// Package serve is the externally-facing HTTP tier over the
// Cinema-style image store — the "millions of users" face of the
// pipeline. It is grown beside the internal obs.Handler endpoint and
// follows CDN-shaped cache semantics:
//
//	/                    minimal built-in viewer page (polls latest.json)
//	/db/info.json        browsable index: variables, cameras, every spec cell
//	/db/<var>/<step>/<cam>  one frame by spec (PNG; ETag = content digest,
//	                     revalidatable with If-None-Match → 304)
//	/img/<digest>        one blob by content address (immutable: ETag +
//	                     Cache-Control max-age=31536000, immutable)
//	/latest.json         pointer to the newest step's frames — the hot
//	                     poll target thousands of viewers hit against a
//	                     live run; ETag'd so unchanged polls cost a 304
//
// Spec URLs are mutable names over immutable content: the body a spec
// serves today may be superseded tomorrow, so they revalidate
// (no-cache + ETag). Digest URLs can never change meaning, so they are
// marked immutable and a well-behaved client never refetches one.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"insitu/internal/imagestore"
	"insitu/internal/obs"
)

// Server serves one image store. Create with New, optionally attach
// metrics with PublishTo, and mount it as an http.Handler.
type Server struct {
	st  *imagestore.Store
	mux *http.ServeMux

	requests atomic.Int64
	notMod   atomic.Int64
	errors   atomic.Int64
	bytes    atomic.Int64

	// Optional observability families (nil until PublishTo).
	mReq   map[string]*obs.Counter
	m304   *obs.Counter
	mBytes *obs.Counter
	mLat   map[string]*obs.Histogram
}

// routes is the label set requests are classified under.
var routes = []string{"index", "info", "db", "img", "latest", "other"}

// New builds the serving tier over st.
func New(st *imagestore.Store) *Server {
	s := &Server{st: st, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("GET /db/info.json", s.handleInfo)
	s.mux.HandleFunc("GET /db/{var}/{step}/{cam}", s.handleSpec)
	s.mux.HandleFunc("GET /img/{digest}", s.handleBlob)
	s.mux.HandleFunc("GET /latest.json", s.handleLatest)
	return s
}

// PublishTo registers the serve-tier metric families on an
// observability registry: per-route request counters and latency
// histograms, 304 and bytes-sent counters. Nil is a no-op.
func (s *Server) PublishTo(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mReq = make(map[string]*obs.Counter, len(routes))
	s.mLat = make(map[string]*obs.Histogram, len(routes))
	for _, r := range routes {
		s.mReq[r] = reg.Counter("serve_requests_total",
			"image-serving requests by route", obs.Str("route", r))
		s.mLat[r] = reg.Histogram("serve_latency_seconds",
			"image-serving request latency by route", obs.LatencyBuckets, obs.Str("route", r))
	}
	s.m304 = reg.Counter("serve_not_modified_total",
		"conditional GETs answered 304 with zero body bytes")
	s.mBytes = reg.Counter("serve_bytes_total",
		"response body bytes sent by the serving tier")
}

// Stats are the server's lifetime counters, for gates that run without
// an observability plane.
type Stats struct {
	Requests    int64
	NotModified int64
	Errors      int64 // 4xx responses
	BytesSent   int64
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:    s.requests.Load(),
		NotModified: s.notMod.Load(),
		Errors:      s.errors.Load(),
		BytesSent:   s.bytes.Load(),
	}
}

// ServeHTTP implements http.Handler with per-route accounting.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	s.requests.Add(1)
	route := classify(r.URL.Path)
	s.mux.ServeHTTP(&countingWriter{ResponseWriter: w, s: s}, r)
	if s.mReq != nil {
		s.mReq[route].Inc()
		s.mLat[route].Observe(time.Since(t0).Seconds())
	}
}

// classify maps a request path onto its route label.
func classify(path string) string {
	switch {
	case path == "/":
		return "index"
	case path == "/db/info.json":
		return "info"
	case path == "/latest.json":
		return "latest"
	case strings.HasPrefix(path, "/db/"):
		return "db"
	case strings.HasPrefix(path, "/img/"):
		return "img"
	}
	return "other"
}

// countingWriter folds status and body bytes into the server counters.
type countingWriter struct {
	http.ResponseWriter
	s *Server
}

func (c *countingWriter) WriteHeader(code int) {
	switch {
	case code == http.StatusNotModified:
		c.s.notMod.Add(1)
		if c.s.m304 != nil {
			c.s.m304.Inc()
		}
	case code >= 400:
		c.s.errors.Add(1)
	}
	c.ResponseWriter.WriteHeader(code)
}

func (c *countingWriter) Write(b []byte) (int, error) {
	n, err := c.ResponseWriter.Write(b)
	c.s.bytes.Add(int64(n))
	if c.s.mBytes != nil {
		c.s.mBytes.Add(int64(n))
	}
	return n, err
}

// etagMatch implements If-None-Match: a "*" or any listed entity tag
// (weak validators compare by opaque tag) matching etag.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" {
			return true
		}
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

// writeConditional serves body under etag with the given cache policy;
// an If-None-Match hit answers 304 with zero body bytes.
func writeConditional(w http.ResponseWriter, r *http.Request, etag, cacheControl, contentType string, body []byte) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", cacheControl)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", contentType)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

const (
	ccImmutable  = "public, max-age=31536000, immutable"
	ccRevalidate = "no-cache"
)

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	body, err := json.MarshalIndent(s.st.Info(), "", " ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sum := sha256.Sum256(body)
	writeConditional(w, r, `"`+hex.EncodeToString(sum[:16])+`"`, ccRevalidate,
		"application/json; charset=utf-8", body)
}

func (s *Server) handleSpec(w http.ResponseWriter, r *http.Request) {
	step, err := strconv.Atoi(r.PathValue("step"))
	if err != nil {
		http.Error(w, "step must be an integer", http.StatusBadRequest)
		return
	}
	sp := imagestore.Spec{Var: r.PathValue("var"), Step: step, Cam: r.PathValue("cam")}
	data, digest, err := s.st.Frame(sp)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	// A spec is a mutable name over immutable content: revalidate, and
	// point clients at the immutable address too.
	w.Header().Set("Link", `</img/`+digest+`>; rel="canonical"`)
	writeConditional(w, r, `"`+digest+`"`, ccRevalidate, "image/png", data)
}

func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	etag := `"` + digest + `"`
	// Content-addressed bytes can never change: a revalidation of the
	// tag the URL itself names is answerable without touching the
	// store at all — immutable digests are never re-served.
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", ccImmutable)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := s.st.Blob(digest)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	writeConditional(w, r, etag, ccImmutable, "image/png", data)
}

// latestPayload is the /latest.json shape: the newest step and its
// frames, each with the spec URL and the immutable content address.
type latestPayload struct {
	Step   int                    `json:"step"`
	Frames map[string]latestFrame `json:"frames"` // "var/cam" -> frame
}

type latestFrame struct {
	Digest string `json:"digest"`
	URL    string `json:"url"` // immutable /img/<digest>
	Spec   string `json:"spec"`
}

func (s *Server) handleLatest(w http.ResponseWriter, r *http.Request) {
	step, ok := s.st.Latest()
	if !ok {
		http.Error(w, "no frames stored yet", http.StatusNotFound)
		return
	}
	out := latestPayload{Step: step, Frames: map[string]latestFrame{}}
	for vc, digest := range s.st.StepFrames(step) {
		v, cam, _ := strings.Cut(vc, "/")
		out.Frames[vc] = latestFrame{
			Digest: digest,
			URL:    "/img/" + digest,
			Spec:   "/db/" + v + "/" + strconv.Itoa(step) + "/" + cam,
		}
	}
	body, err := json.MarshalIndent(&out, "", " ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The ETag covers the content, so a poll of an unchanged run —
	// the overwhelmingly common case under heavy viewer traffic —
	// costs a 304 and zero body bytes.
	sum := sha256.Sum256(body)
	writeConditional(w, r, `"`+hex.EncodeToString(sum[:16])+`"`, ccRevalidate,
		"application/json; charset=utf-8", body)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(viewerHTML))
}

// viewerHTML is the minimal built-in viewer: it polls latest.json
// (conditional requests via the browser cache) and shows each frame by
// its immutable address.
const viewerHTML = `<!doctype html>
<meta charset="utf-8">
<title>insitu image store</title>
<style>body{font-family:monospace;margin:1.5em}img{image-rendering:pixelated;border:1px solid #888;margin:4px}</style>
<h1>insitu image store</h1>
<p>step <span id="step">–</span> · <a href="/db/info.json">db/info.json</a> · <a href="/latest.json">latest.json</a></p>
<div id="frames"></div>
<script>
async function poll(){
  try{
    const r = await fetch('/latest.json',{cache:'no-cache'});
    if(r.ok){
      const j = await r.json();
      document.getElementById('step').textContent = j.step;
      const div = document.getElementById('frames');
      div.replaceChildren(...Object.entries(j.frames).map(([name,f])=>{
        const fig=document.createElement('figure');
        const img=document.createElement('img');
        img.src=f.url; img.title=name; img.width=320;
        const cap=document.createElement('figcaption');
        cap.textContent=name;
        fig.append(img,cap);
        return fig;
      }));
    }
  }catch(e){}
  setTimeout(poll,1000);
}
poll();
</script>
`
