package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"insitu/internal/imagestore"
	"insitu/internal/obs"
	"insitu/internal/render"
)

func frame(seed int) *render.Image {
	im := render.NewImage(16, 12)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := float64((x*5+y*11+seed)%16) / 16
			im.Set(x, y, v, 1-v, v/3, v)
		}
	}
	return im
}

// newServer builds a store with a few frames and a test server over it.
func newServer(t *testing.T) (*imagestore.Store, *Server, *httptest.Server) {
	t.Helper()
	st, err := imagestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for step := 0; step < 3; step++ {
		for _, cam := range []string{"cam00", "cam01"} {
			if _, err := st.PutFrame("T.insitu", step, cam, frame(step*2+len(cam)%3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sv := New(st)
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	return st, sv, ts
}

func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

var pngMagic = []byte{0x89, 'P', 'N', 'G'}

func TestSpecRouteServesPNGWithETag(t *testing.T) {
	st, _, ts := newServer(t)
	resp, body := get(t, ts.URL+"/db/T.insitu/1/cam00", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.HasPrefix(body, pngMagic) {
		t.Fatal("body is not a PNG")
	}
	digest, ok := st.Digest(imagestore.Spec{Var: "T.insitu", Step: 1, Cam: "cam00"})
	if !ok {
		t.Fatal("store lost the spec")
	}
	if got := resp.Header.Get("ETag"); got != `"`+digest+`"` {
		t.Fatalf("ETag %s, want quoted %s", got, digest)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != ccRevalidate {
		t.Fatalf("spec route Cache-Control %q", cc)
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, digest) {
		t.Fatalf("no canonical link to the immutable address: %q", link)
	}
}

// TestConditionalGet304ZeroBody: If-None-Match on every cacheable route
// must answer 304 with zero body bytes on the wire.
func TestConditionalGet304ZeroBody(t *testing.T) {
	_, sv, ts := newServer(t)
	for _, path := range []string{
		"/db/T.insitu/1/cam00",
		"/db/info.json",
		"/latest.json",
	} {
		resp, body := get(t, ts.URL+path, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", path)
		}
		sent := sv.Stats().BytesSent
		resp2, body2 := get(t, ts.URL+path, map[string]string{"If-None-Match": etag})
		if resp2.StatusCode != http.StatusNotModified {
			t.Fatalf("%s: revalidation status %d, want 304", path, resp2.StatusCode)
		}
		if len(body2) != 0 {
			t.Fatalf("%s: 304 carried %d body bytes", path, len(body2))
		}
		if sv.Stats().BytesSent != sent {
			t.Fatalf("%s: 304 moved the bytes-sent counter", path)
		}
		if len(body) == 0 {
			t.Fatalf("%s: initial body empty", path)
		}
	}
	if sv.Stats().NotModified != 3 {
		t.Fatalf("NotModified = %d, want 3", sv.Stats().NotModified)
	}
}

// TestImmutableDigestNeverReServed: the /img route must mark responses
// immutable and answer a revalidation of its own digest with 304 —
// without consulting the store (no cache traffic).
func TestImmutableDigestNeverReServed(t *testing.T) {
	st, _, ts := newServer(t)
	digest, ok := st.Digest(imagestore.Spec{Var: "T.insitu", Step: 2, Cam: "cam01"})
	if !ok {
		t.Fatal("store lost the spec")
	}
	resp, body := get(t, ts.URL+"/img/"+digest, nil)
	if resp.StatusCode != 200 || !bytes.HasPrefix(body, pngMagic) {
		t.Fatalf("immutable fetch: status %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != ccImmutable {
		t.Fatalf("Cache-Control %q, want %q", cc, ccImmutable)
	}
	hits := st.Stats().CacheHits
	misses := st.Stats().CacheMisses
	for i := 0; i < 5; i++ {
		resp2, body2 := get(t, ts.URL+"/img/"+digest,
			map[string]string{"If-None-Match": `"` + digest + `"`})
		if resp2.StatusCode != http.StatusNotModified || len(body2) != 0 {
			t.Fatalf("revalidation %d: status %d, %d bytes", i, resp2.StatusCode, len(body2))
		}
		if cc := resp2.Header.Get("Cache-Control"); cc != ccImmutable {
			t.Fatalf("304 lost the immutable policy: %q", cc)
		}
	}
	if st.Stats().CacheHits != hits || st.Stats().CacheMisses != misses {
		t.Fatal("immutable revalidations touched the store")
	}
}

func TestIfNoneMatchVariants(t *testing.T) {
	etag := `"abc"`
	for hdr, want := range map[string]bool{
		"":                  false,
		`"abc"`:             true,
		`W/"abc"`:           true,
		`"zzz", "abc"`:      true,
		`"zzz" , W/"abc"`:   true,
		"*":                 true,
		`"ab"`:              false,
		`"zzz"`:             false,
		`"abc`:              false,
		`"zzz", "yyy"`:      false,
		`W/"zzz", W/"uvw" `: false,
	} {
		if got := etagMatch(hdr, etag); got != want {
			t.Errorf("etagMatch(%q) = %v, want %v", hdr, got, want)
		}
	}
}

func TestLatestPointer(t *testing.T) {
	st, _, ts := newServer(t)
	resp, body := get(t, ts.URL+"/latest.json", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got latestPayload
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Step != 2 || len(got.Frames) != 2 {
		t.Fatalf("latest = step %d with %d frames", got.Step, len(got.Frames))
	}
	etag := resp.Header.Get("ETag")

	// Each advertised URL must be fetchable and match its digest.
	for name, f := range got.Frames {
		r2, b2 := get(t, ts.URL+f.URL, nil)
		if r2.StatusCode != 200 || !bytes.HasPrefix(b2, pngMagic) {
			t.Fatalf("%s: %s -> %d", name, f.URL, r2.StatusCode)
		}
		r3, _ := get(t, ts.URL+f.Spec, nil)
		if r3.StatusCode != 200 || r3.Header.Get("ETag") != `"`+f.Digest+`"` {
			t.Fatalf("%s: spec URL disagrees with digest", name)
		}
	}

	// A new step must churn the pointer's ETag so pollers see it.
	if _, err := st.PutFrame("T.insitu", 3, "cam00", frame(9)); err != nil {
		t.Fatal(err)
	}
	resp4, _ := get(t, ts.URL+"/latest.json", map[string]string{"If-None-Match": etag})
	if resp4.StatusCode != 200 {
		t.Fatalf("stale ETag still matched after a new step: %d", resp4.StatusCode)
	}
	if resp4.Header.Get("ETag") == etag {
		t.Fatal("latest.json ETag did not churn with a new step")
	}
}

func TestNotFoundAndBadRequest(t *testing.T) {
	_, sv, ts := newServer(t)
	for path, want := range map[string]int{
		"/db/T.insitu/99/cam00":      404,
		"/db/nosuch/1/cam00":         404,
		"/db/T.insitu/notanum/cam00": 400,
		"/img/deadbeef":              404,
		"/nosuch":                    404,
	} {
		resp, _ := get(t, ts.URL+path, nil)
		if resp.StatusCode != want {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	if sv.Stats().Errors != 5 {
		t.Errorf("Errors = %d, want 5", sv.Stats().Errors)
	}
}

func TestEmptyStoreLatest(t *testing.T) {
	st, err := imagestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(New(st))
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/latest.json", nil)
	if resp.StatusCode != 404 {
		t.Fatalf("empty store latest: %d", resp.StatusCode)
	}
	resp2, _ := get(t, ts.URL+"/db/info.json", nil)
	if resp2.StatusCode != 200 {
		t.Fatalf("empty store info: %d", resp2.StatusCode)
	}
}

func TestIndexPage(t *testing.T) {
	_, _, ts := newServer(t)
	resp, body := get(t, ts.URL+"/", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "latest.json") {
		t.Fatalf("index page: %d", resp.StatusCode)
	}
}

// TestConcurrentServeWhileWriting is the serving tier's -race gate:
// viewers hammer every route while a run keeps appending frames.
func TestConcurrentServeWhileWriting(t *testing.T) {
	st, sv, ts := newServer(t)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the live run
		defer wg.Done()
		for step := 3; step < 15; step++ {
			if _, err := st.PutFrame("T.insitu", step, "cam00", frame(step)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for v := 0; v < 8; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			etag := ""
			for i := 0; i < 40; i++ {
				hdr := map[string]string{}
				if etag != "" {
					hdr["If-None-Match"] = etag
				}
				resp, body := get(t, ts.URL+"/latest.json", hdr)
				switch resp.StatusCode {
				case 200:
					etag = resp.Header.Get("ETag")
					var p latestPayload
					if err := json.Unmarshal(body, &p); err != nil {
						t.Errorf("viewer %d: %v", v, err)
						return
					}
					for _, f := range p.Frames {
						r2, _ := get(t, ts.URL+f.URL, nil)
						if r2.StatusCode != 200 {
							t.Errorf("viewer %d: %s -> %d", v, f.URL, r2.StatusCode)
							return
						}
					}
				case 304:
				default:
					t.Errorf("viewer %d: latest -> %d", v, resp.StatusCode)
					return
				}
				get(t, ts.URL+fmt.Sprintf("/db/T.insitu/%d/cam00", i%3), nil)
			}
		}(v)
	}
	wg.Wait()
	if sv.Stats().Requests == 0 || sv.Stats().BytesSent == 0 {
		t.Fatalf("counters did not move: %+v", sv.Stats())
	}
}

func TestPublishTo(t *testing.T) {
	_, sv, ts := newServer(t)
	reg := obs.NewRegistry()
	sv.PublishTo(reg)
	sv.PublishTo(nil) // nil registry must be a no-op, not a panic
	get(t, ts.URL+"/db/T.insitu/0/cam00", nil)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, fam := range []string{"serve_requests_total", "serve_latency_seconds", "serve_not_modified_total", "serve_bytes_total"} {
		if !strings.Contains(text, fam) {
			t.Errorf("metrics exposition missing %s", fam)
		}
	}
}
