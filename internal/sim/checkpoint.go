package sim

import (
	"fmt"

	"insitu/internal/grid"
)

// CheckpointFields returns copies of every simulation variable over
// the rank's owned block, in VarNames order — the per-rank checkpoint
// payload. Only the owned interior is saved: ghost shells, prescribed
// velocity, and the derived Y_N2 are all reconstructed exactly by
// Restore, so the checkpoint carries no redundant state.
func (rk *Rank) CheckpointFields() []*grid.Field {
	out := make([]*grid.Field, 0, len(VarNames))
	for _, name := range VarNames {
		out = append(out, rk.Field(name))
	}
	return out
}

// Restore installs a checkpoint taken with CheckpointFields after
// `step` completed steps, reproducing the post-Step state bit for bit:
//
//   - the advected variables' owned interiors are pasted back,
//   - a full ghost exchange rebuilds every ghost shell (neighbor faces,
//     edges, corners, and physical boundary planes) — collective, so
//     every rank of the world must call Restore at the same point,
//   - the prescribed velocity and pressure are re-evaluated at the
//     time of step's last substep (exactly what Step left behind), and
//   - updateN2 re-derives Y_N2 and re-clamps the species, which is
//     idempotent on already-clamped checkpoint data.
//
// Advancing a restored rank with Step therefore continues the original
// trajectory bitwise — the property the recovery crash matrix asserts.
func (rk *Rank) Restore(step int, fields []*grid.Field) error {
	if step < 1 {
		return fmt.Errorf("sim: restore: step %d must be >= 1", step)
	}
	byName := make(map[string]*grid.Field, len(fields))
	for _, f := range fields {
		byName[f.Name] = f
	}
	for _, name := range advected {
		f, ok := byName[name]
		if !ok {
			return fmt.Errorf("sim: restore: checkpoint missing variable %q", name)
		}
		if f.Box != rk.owned {
			return fmt.Errorf("sim: restore: %q covers %v, rank owns %v", name, f.Box, rk.owned)
		}
		rk.fields[name].Paste(f)
	}
	rk.step = step
	rk.fullExchange()
	sub := rk.sim.cfg.SubSteps
	if sub == 0 {
		sub = 1
	}
	tLast := (float64(step-1) + float64(sub-1)/float64(sub)) * rk.sim.cfg.Dt
	rk.fillVelocity(tLast)
	rk.updateN2()
	return nil
}
