package sim

import (
	"testing"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

// TestCheckpointRestoreBitIdentical runs a 2-rank simulation, snapshots
// at mid-run, restores fresh ranks from the snapshot, and checks that
// the continued trajectories agree bitwise with the uninterrupted run —
// the contract the recovery subsystem's resume path is built on.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	cfg := DefaultConfig(grid.NewBox(16, 10, 6), 2, 1, 1)
	cfg.SubSteps = 3
	cfg.Seed = 11
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const ckptAt, total = 3, 6
	snaps := make([][]*grid.Field, s.Ranks())
	finals := make([][]*grid.Field, s.Ranks())
	comm.Run(s.Ranks(), func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		rk.RunSteps(ckptAt)
		snaps[r.ID()] = rk.CheckpointFields()
		rk.RunSteps(total - ckptAt)
		finals[r.ID()] = rk.CheckpointFields()
	})

	restored := make([][]*grid.Field, s.Ranks())
	comm.Run(s.Ranks(), func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		if err := rk.Restore(ckptAt, snaps[r.ID()]); err != nil {
			t.Error(err)
			return
		}
		if rk.StepCount() != ckptAt {
			t.Errorf("rank %d: StepCount = %d after restore, want %d", r.ID(), rk.StepCount(), ckptAt)
		}
		rk.RunSteps(total - ckptAt)
		restored[r.ID()] = rk.CheckpointFields()
	})

	for rank := range finals {
		for vi, want := range finals[rank] {
			got := restored[rank][vi]
			if got.Name != want.Name || got.Box != want.Box {
				t.Fatalf("rank %d var %d: header mismatch", rank, vi)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("rank %d %s[%d]: restored %v != uninterrupted %v",
						rank, want.Name, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestRestoreValidation(t *testing.T) {
	cfg := DefaultConfig(grid.NewBox(8, 6, 4), 1, 1, 1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	comm.Run(1, func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		rk.RunSteps(1)
		snap := rk.CheckpointFields()
		if err := rk.Restore(0, snap); err == nil {
			t.Error("step 0 restore must fail")
		}
		if err := rk.Restore(1, snap[:2]); err == nil {
			t.Error("missing variables must fail")
		}
	})
}
