package sim

import (
	"testing"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

// TestJetVelocityProfile: the prescribed velocity is jet-like — fast
// in the core, slow in the coflow, always downstream (u > 0 on
// average).
func TestJetVelocityProfile(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	cfg.TurbAmp = 0 // isolate the mean profile
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := cfg.Global.Dims()
	cy, cz := float64(d[1])/2, float64(d[2])/2
	uCore, _, _ := s.velocity(5, cy, cz, 0)
	uEdge, _, _ := s.velocity(5, 0, 0, 0)
	if uCore <= uEdge {
		t.Fatalf("jet core (%g) must be faster than coflow (%g)", uCore, uEdge)
	}
	if uEdge < cfg.CoflowV*0.9 {
		t.Fatalf("coflow velocity too small: %g", uEdge)
	}
	if diff := uCore - cfg.JetVelocity; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("centerline velocity %g != configured %g", uCore, cfg.JetVelocity)
	}
}

// TestTurbulenceBounded: the vortical perturbations never exceed
// TurbAmp per component, the bound the CFL check relies on.
func TestTurbulenceBounded(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := New(func() Config { c := cfg; c.TurbAmp = 0; return c }())
	for i := 0; i < 200; i++ {
		x, y, z := float64(i%24), float64((i*7)%12), float64((i*3)%8)
		tt := float64(i) * 0.37
		u1, v1, w1 := s.velocity(x, y, z, tt)
		u0, v0, w0 := base.velocity(x, y, z, tt)
		for _, dv := range []float64{u1 - u0, v1 - v0, w1 - w0} {
			if dv > cfg.TurbAmp+1e-12 || dv < -cfg.TurbAmp-1e-12 {
				t.Fatalf("turbulent component %g exceeds bound %g", dv, cfg.TurbAmp)
			}
		}
	}
}

// TestInflowReplenishesFuel: the x=0 boundary keeps feeding cold fuel,
// so the jet core near the inlet stays fuel-rich even as the flame
// burns downstream.
func TestInflowReplenishesFuel(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = RunAll(s, func(rk *Rank) error {
		rk.RunSteps(40)
		d := cfg.Global.Dims()
		h2 := rk.Field("Y_H2").At(0, d[1]/2, d[2]/2)
		if h2 < 0.5 {
			t.Errorf("inlet jet core fuel depleted: Y_H2=%g", h2)
		}
		if got := rk.StepCount(); got != 40 {
			t.Errorf("step count: want 40, got %d", got)
		}
		if rk.Comm() == nil || rk.Comm().Size() != 1 {
			t.Error("Comm accessor broken")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSubStepsEquivalence: SubSteps=n advances with dt/n substeps; the
// result is a (slightly more accurate) solution of the same problem,
// so fields must stay close to the SubSteps=1 run, and identical
// across decompositions.
func TestSubStepsEquivalence(t *testing.T) {
	base := smallConfig(1, 1, 1)
	base.KernelRate = 0
	sub := base
	sub.SubSteps = 4

	run := func(cfg Config) *grid.Field {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out *grid.Field
		comm.Run(1, func(r *comm.Rank) {
			rk, _ := s.NewRank(r)
			rk.RunSteps(5)
			out = rk.Field("T")
		})
		return out
	}
	a, b := run(base), run(sub)
	var maxDiff float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.1 {
		t.Fatalf("substepped solution diverged: max diff %g", maxDiff)
	}
	if maxDiff == 0 {
		t.Fatal("substepping should change the discretization slightly")
	}

	// Decomposition independence must hold with substeps too.
	sub2 := sub
	sub2.Px, sub2.Py, sub2.Pz = 2, 2, 1
	s2, err := New(sub2)
	if err != nil {
		t.Fatal(err)
	}
	got := grid.NewField("T", sub2.Global)
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	comm.Run(s2.Ranks(), func(r *comm.Rank) {
		rk, _ := s2.NewRank(r)
		rk.RunSteps(5)
		f := rk.Field("T")
		<-gate
		got.Paste(f)
		gate <- struct{}{}
	})
	for i := range b.Data {
		if got.Data[i] != b.Data[i] {
			t.Fatal("substepped run is not decomposition independent")
		}
	}
}

// TestPressureField: P is filled everywhere and anticorrelates with
// speed (Bernoulli-like).
func TestPressureField(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	s, _ := New(cfg)
	err := RunAll(s, func(rk *Rank) error {
		rk.RunSteps(2)
		p := rk.Field("P")
		u := rk.Field("u")
		d := cfg.Global.Dims()
		core := p.At(d[0]/2, d[1]/2, d[2]/2)
		edge := p.At(d[0]/2, 0, 0)
		if u.At(d[0]/2, d[1]/2, d[2]/2) > u.At(d[0]/2, 0, 0) && core >= edge {
			t.Errorf("pressure should drop where speed rises: core %g vs edge %g", core, edge)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
