package sim

import (
	"fmt"
	"math"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

// Rank is the per-process simulation state: the rank's owned block
// plus a one-point ghost layer for every variable. Scalars advance by
// first-order upwind advection, explicit diffusion and pointwise
// reaction, so the evolution is bitwise independent of the domain
// decomposition — a property the analysis validation tests rely on.
type Rank struct {
	sim   *Sim
	r     *comm.Rank
	owned grid.Box // block owned by this rank
	ghost grid.Box // owned grown by one in every direction

	fields  map[string]*grid.Field // storage over the ghost box
	scratch map[string]*grid.Field
	step    int
}

// NewRank creates the state for comm rank r. The comm world size must
// equal the decomposition's rank count.
func (s *Sim) NewRank(r *comm.Rank) (*Rank, error) {
	if r.Size() != s.dc.Ranks() {
		return nil, fmt.Errorf("sim: world size %d != decomposition ranks %d", r.Size(), s.dc.Ranks())
	}
	owned := s.dc.Block(r.ID())
	rk := &Rank{
		sim:     s,
		r:       r,
		owned:   owned,
		ghost:   owned.Grow(1),
		fields:  make(map[string]*grid.Field, len(VarNames)),
		scratch: make(map[string]*grid.Field, len(advected)),
	}
	for _, name := range VarNames {
		rk.fields[name] = grid.NewField(name, rk.ghost)
	}
	for _, name := range advected {
		rk.scratch[name] = grid.NewField(name, rk.ghost)
	}
	rk.initialize()
	return rk, nil
}

// OwnedBox returns the rank's block (without ghosts).
func (rk *Rank) OwnedBox() grid.Box { return rk.owned }

// Step returns the number of completed time steps.
func (rk *Rank) StepCount() int { return rk.step }

// Field returns a copy of the named variable restricted to the owned
// block.
func (rk *Rank) Field(name string) *grid.Field {
	f, ok := rk.fields[name]
	if !ok {
		return nil
	}
	return f.Extract(rk.owned)
}

// GhostedField returns the live storage of the named variable over the
// ghost box. In-situ analyses access simulation state through this,
// "sharing the native simulation data structures" as in the paper;
// callers must not retain it across steps.
func (rk *Rank) GhostedField(name string) *grid.Field { return rk.fields[name] }

// initialize seeds every column with its inflow profile, so the run
// starts from a smooth lifted-jet state.
func (rk *Rank) initialize() {
	b := rk.ghost
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			prof := rk.sim.inflowProfile(float64(j), float64(k))
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				for name, v := range prof {
					rk.fields[name].Set(i, j, k, v)
				}
			}
		}
	}
	rk.fillVelocity(0)
	rk.updateN2()
}

// fillVelocity evaluates the prescribed velocity and pressure over the
// ghost box at simulation time t.
func (rk *Rank) fillVelocity(t float64) {
	u, v, w, p := rk.fields["u"], rk.fields["v"], rk.fields["w"], rk.fields["P"]
	b := rk.ghost
	idx := 0
	for k := b.Lo[2]; k < b.Hi[2]; k++ {
		for j := b.Lo[1]; j < b.Hi[1]; j++ {
			for i := b.Lo[0]; i < b.Hi[0]; i++ {
				uu, vv, ww := rk.sim.velocity(float64(i), float64(j), float64(k), t)
				u.Data[idx] = uu
				v.Data[idx] = vv
				w.Data[idx] = ww
				p.Data[idx] = 1 - 0.5*(uu*uu+vv*vv+ww*ww)
				idx++
			}
		}
	}
}

// ghost-exchange message tags: tag = varIdx*8 + axis*2 + dirBit.
func exchangeTag(varIdx, axis, dir int) int {
	bit := 0
	if dir > 0 {
		bit = 1
	}
	return varIdx*8 + axis*2 + bit
}

// fullExchange refreshes the complete one-point ghost shell of every
// advected variable: faces, edges and corners. It proceeds axis by
// axis, with each phase's slabs extended into the ghost range of the
// axes already exchanged, so corner values propagate correctly (the
// standard three-phase halo exchange). Domain-boundary ghost planes
// are filled per phase with the physical boundary conditions (inflow
// profile at x-low, zero gradient elsewhere).
//
// After fullExchange, the ghosted fields of all ranks agree exactly
// with the corresponding interiors of a serial run — the property the
// in-situ analyses (merge-tree boundary augmentation, face-adjacent
// trilinear sampling) depend on.
func (rk *Rank) fullExchange() {
	for vi, name := range advected {
		f := rk.fields[name]
		for axis := 0; axis < 3; axis++ {
			// Slab extended in already-exchanged axes.
			ext := rk.owned
			for a2 := 0; a2 < axis; a2++ {
				ext.Lo[a2]--
				ext.Hi[a2]++
			}
			for _, dir := range []int{-1, 1} {
				nb := rk.sim.dc.FaceNeighbor(rk.r.ID(), axis, dir)
				if nb < 0 {
					continue
				}
				face := ext
				if dir < 0 {
					face.Hi[axis] = face.Lo[axis] + 1
				} else {
					face.Lo[axis] = face.Hi[axis] - 1
				}
				rk.r.Send(nb, exchangeTag(vi, axis, dir), f.Extract(face))
			}
			for _, dir := range []int{-1, 1} {
				nb := rk.sim.dc.FaceNeighbor(rk.r.ID(), axis, dir)
				if nb < 0 {
					continue
				}
				data, _ := rk.r.Recv(nb, exchangeTag(vi, axis, -dir))
				f.Paste(data.(*grid.Field))
			}
			rk.fillBoundaryPlane(name, axis)
		}
	}
}

// fillBoundaryPlane applies boundary conditions on the ghost planes of
// one axis (extended into the ghost range of lower axes), for points
// outside the global domain in that axis.
func (rk *Rank) fillBoundaryPlane(name string, axis int) {
	g := rk.sim.cfg.Global
	f := rk.fields[name]
	for _, dir := range []int{-1, 1} {
		// Plane outside the domain?
		var plane grid.Box
		if dir < 0 {
			if rk.owned.Lo[axis] != g.Lo[axis] {
				continue
			}
			plane = rk.ghost
			plane.Hi[axis] = plane.Lo[axis] + 1
		} else {
			if rk.owned.Hi[axis] != g.Hi[axis] {
				continue
			}
			plane = rk.ghost
			plane.Lo[axis] = plane.Hi[axis] - 1
		}
		// Restrict non-axis dims: axes already exchanged keep their
		// ghost extent, later axes stay within owned.
		for a2 := 0; a2 < 3; a2++ {
			if a2 == axis {
				continue
			}
			if a2 > axis {
				plane.Lo[a2] = rk.owned.Lo[a2]
				plane.Hi[a2] = rk.owned.Hi[a2]
			}
		}
		inflow := axis == 0 && dir < 0
		for k := plane.Lo[2]; k < plane.Hi[2]; k++ {
			for j := plane.Lo[1]; j < plane.Hi[1]; j++ {
				for i := plane.Lo[0]; i < plane.Hi[0]; i++ {
					if inflow {
						f.Set(i, j, k, rk.sim.inflowProfile(float64(j), float64(k))[name])
						continue
					}
					ci := clampI(i, g.Lo[0], g.Hi[0]-1)
					cj := clampI(j, g.Lo[1], g.Hi[1]-1)
					ck := clampI(k, g.Lo[2], g.Hi[2]-1)
					// Clamp into the ghost box as well: for lower
					// axes the clamped source may be a ghost value
					// exchanged in an earlier phase.
					ci = clampI(ci, rk.ghost.Lo[0], rk.ghost.Hi[0]-1)
					cj = clampI(cj, rk.ghost.Lo[1], rk.ghost.Hi[1]-1)
					ck = clampI(ck, rk.ghost.Lo[2], rk.ghost.Hi[2]-1)
					f.Set(i, j, k, f.At(ci, cj, ck))
				}
			}
		}
	}
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// advanceScalars applies one explicit step of upwind advection and
// central diffusion to every advected variable on the owned block,
// with time step dt.
func (rk *Rank) advanceScalars(dt float64) {
	cfg := rk.sim.cfg
	u, v, w := rk.fields["u"], rk.fields["v"], rk.fields["w"]
	for _, name := range advected {
		f := rk.fields[name]
		out := rk.scratch[name]
		for k := rk.owned.Lo[2]; k < rk.owned.Hi[2]; k++ {
			for j := rk.owned.Lo[1]; j < rk.owned.Hi[1]; j++ {
				for i := rk.owned.Lo[0]; i < rk.owned.Hi[0]; i++ {
					c := f.At(i, j, k)
					xm := f.At(i-1, j, k)
					xp := f.At(i+1, j, k)
					ym := f.At(i, j-1, k)
					yp := f.At(i, j+1, k)
					zm := f.At(i, j, k-1)
					zp := f.At(i, j, k+1)

					uu, vv, ww := u.At(i, j, k), v.At(i, j, k), w.At(i, j, k)
					var adv float64
					if uu >= 0 {
						adv += uu * (c - xm)
					} else {
						adv += uu * (xp - c)
					}
					if vv >= 0 {
						adv += vv * (c - ym)
					} else {
						adv += vv * (yp - c)
					}
					if ww >= 0 {
						adv += ww * (c - zm)
					} else {
						adv += ww * (zp - c)
					}
					lap := xm + xp + ym + yp + zm + zp - 6*c
					out.Set(i, j, k, c+dt*(-adv+cfg.Diffusivity*lap))
				}
			}
		}
	}
	for _, name := range advected {
		rk.fields[name], rk.scratch[name] = rk.scratch[name], rk.fields[name]
		rk.fields[name].Name = name
		rk.scratch[name].Name = name
	}
}

// react applies the single-step H2 chemistry pointwise on the owned
// block with time step dt: H2 + 8 O2 -> 9 H2O by mass, with OH and
// minor radicals as fast intermediates relaxing toward the reaction
// rate.
func (rk *Rank) react(dt float64) {
	cfg := rk.sim.cfg
	T := rk.fields["T"]
	h2 := rk.fields["Y_H2"]
	o2 := rk.fields["Y_O2"]
	h2o := rk.fields["Y_H2O"]
	oh := rk.fields["Y_OH"]
	ho2 := rk.fields["Y_HO2"]
	h2o2 := rk.fields["Y_H2O2"]
	hr := rk.fields["Y_H"]
	or := rk.fields["Y_O"]
	for k := rk.owned.Lo[2]; k < rk.owned.Hi[2]; k++ {
		for j := rk.owned.Lo[1]; j < rk.owned.Hi[1]; j++ {
			for i := rk.owned.Lo[0]; i < rk.owned.Hi[0]; i++ {
				t := T.At(i, j, k)
				yh2, yo2 := h2.At(i, j, k), o2.At(i, j, k)
				rate := cfg.ReactA * yh2 * yo2 * math.Exp(-cfg.ReactTa/math.Max(t, 0.05))
				c := rate * dt
				if c > yh2 {
					c = yh2
				}
				if 8*c > yo2 {
					c = yo2 / 8
				}
				h2.Set(i, j, k, yh2-c)
				o2.Set(i, j, k, yo2-8*c)
				h2o.Set(i, j, k, h2o.At(i, j, k)+9*c)
				T.Set(i, j, k, t+cfg.HeatRelease*c)
				oh.Set(i, j, k, oh.At(i, j, k)+0.30*c-0.5*dt*oh.At(i, j, k))
				ho2.Set(i, j, k, ho2.At(i, j, k)+0.10*c-0.8*dt*ho2.At(i, j, k))
				h2o2.Set(i, j, k, h2o2.At(i, j, k)+0.05*c-0.3*dt*h2o2.At(i, j, k))
				hr.Set(i, j, k, hr.At(i, j, k)+0.08*c-1.0*dt*hr.At(i, j, k))
				or.Set(i, j, k, or.At(i, j, k)+0.06*c-1.0*dt*or.At(i, j, k))
			}
		}
	}
}

// injectKernels adds the active ignition kernels' temperature and
// radical sources on the owned block.
func (rk *Rank) injectKernels(step int) {
	for _, kn := range rk.sim.ActiveKernels(step) {
		rk.injectOne(kn, step)
	}
}

// injectOne applies a single kernel's source at the given step.
func (rk *Rank) injectOne(kn Kernel, step int) {
	cfg := rk.sim.cfg
	T := rk.fields["T"]
	oh := rk.fields["Y_OH"]
	age := step - kn.Birth
	shape := math.Sin(math.Pi * (float64(age) + 0.5) / float64(cfg.KernelLifetime))
	// Only touch points within 3 radii.
	r3 := 3 * kn.Radius
	lo := [3]int{int(kn.X - r3), int(kn.Y - r3), int(kn.Z - r3)}
	hi := [3]int{int(kn.X+r3) + 1, int(kn.Y+r3) + 1, int(kn.Z+r3) + 1}
	box := grid.Box{Lo: lo, Hi: hi}.Intersect(rk.owned)
	if box.Empty() {
		return
	}
	s2 := 2 * kn.Radius * kn.Radius
	// The kernel relaxes the local state toward an ignition target
	// (hot spot with elevated radicals) rather than adding heat
	// unboundedly: overlapping kernels then saturate instead of
	// stacking, keeping temperatures physical.
	tTarget := cfg.CoflowT + kn.Amp
	const relaxRate = 2.0
	for k := box.Lo[2]; k < box.Hi[2]; k++ {
		for j := box.Lo[1]; j < box.Hi[1]; j++ {
			for i := box.Lo[0]; i < box.Hi[0]; i++ {
				dx := float64(i) - kn.X
				dy := float64(j) - kn.Y
				dz := float64(k) - kn.Z
				g := math.Exp(-(dx*dx + dy*dy + dz*dz) / s2)
				r := relaxRate * shape * g * cfg.Dt
				if r > 1 {
					r = 1
				}
				t0 := T.At(i, j, k)
				if t0 < tTarget {
					T.Set(i, j, k, t0+r*(tTarget-t0))
				}
				y0 := oh.At(i, j, k)
				if y0 < 0.2 {
					oh.Set(i, j, k, y0+r*(0.2-y0))
				}
			}
		}
	}
}

// updateN2 clamps every species mass fraction to [0,1] and closes the
// balance: Y_N2 = 1 - sum of the others, clamped to [0,1].
func (rk *Rank) updateN2() {
	n2 := rk.fields["Y_N2"]
	species := []string{"Y_H2", "Y_O2", "Y_H2O", "Y_OH", "Y_HO2", "Y_H2O2", "Y_H", "Y_O"}
	for idx := range n2.Data {
		sum := 0.0
		for _, sp := range species {
			y := rk.fields[sp].Data[idx]
			if y < 0 {
				y = 0
				rk.fields[sp].Data[idx] = y
			} else if y > 1 {
				y = 1
				rk.fields[sp].Data[idx] = y
			}
			sum += y
		}
		v := 1 - sum
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		n2.Data[idx] = v
	}
}

// Step advances the rank's state by one time step. All ranks of the
// world must call Step collectively. On entry the ghost shell is
// consistent (established by initialization and by the previous
// step's trailing exchange); on exit it is consistent again, so
// in-situ analyses may read the ghosted fields directly.
func (rk *Rank) Step() {
	cfg := rk.sim.cfg
	sub := cfg.SubSteps
	if sub == 0 {
		sub = 1
	}
	dtSub := cfg.Dt / float64(sub)
	for s := 0; s < sub; s++ {
		t := (float64(rk.step) + float64(s)/float64(sub)) * cfg.Dt
		rk.fillVelocity(t)
		rk.advanceScalars(dtSub)
		rk.react(dtSub)
		if s == sub-1 {
			rk.injectKernels(rk.step)
		}
		// Refresh the ghost shell after every substep so the next
		// substep's stencils (and, after the last one, the in-situ
		// analyses) see a consistent ghosted state.
		rk.fullExchange()
	}
	// Y_N2 is derived pointwise from the other species, so computing
	// it after the exchange keeps the whole ghosted state consistent.
	rk.updateN2()
	rk.step++
}

// RunSteps advances n steps.
func (rk *Rank) RunSteps(n int) {
	for i := 0; i < n; i++ {
		rk.Step()
	}
}

// RunAll launches one goroutine per rank of the decomposition, calls
// fn on each, and returns the first error. It is the convenience
// entry point for drivers that do not need the full core.Pipeline.
func RunAll(s *Sim, fn func(rk *Rank) error) error {
	errs := make([]error, s.Ranks())
	comm.Run(s.Ranks(), func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			errs[r.ID()] = err
			return
		}
		errs[r.ID()] = fn(rk)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm returns the rank's communicator handle.
func (rk *Rank) Comm() *comm.Rank { return rk.r }
