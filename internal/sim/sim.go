// Package sim implements an S3D proxy: a massively parallel structured
// grid solver producing the multi-variable turbulent-combustion fields
// the analysis pipeline consumes. It is not a DNS code; it is the
// closest synthetic equivalent that exercises the same code paths
// (per-rank blocks, ghost exchange, 14 double-precision variables, and
// — crucially — intermittent ignition kernels at the base of a lifted
// jet flame whose lifetime of ~10 steps motivates the paper's
// high-frequency concurrent analysis).
//
// The model: a prescribed incompressible jet velocity field with
// superposed vortical perturbations advects temperature and species
// mass fractions; a single-step Arrhenius H2 oxidation reaction
// releases heat and produces H2O with OH as a fast intermediate; and a
// deterministic Poisson process injects short-lived ignition kernels
// in the flame-base region. All state evolves identically for any
// domain decomposition, so analyses can be validated against serial
// runs bit-for-bit.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"insitu/internal/grid"
)

// VarNames lists the 14 simulation variables, matching the paper's
// runs (temperature, velocity, pressure, and the species of a hydrogen
// mechanism).
var VarNames = []string{
	"T", "u", "v", "w", "P",
	"Y_H2", "Y_O2", "Y_H2O", "Y_OH", "Y_HO2", "Y_H2O2", "Y_H", "Y_O", "Y_N2",
}

// advected lists the variables advanced by advection-diffusion-reaction;
// velocity and pressure are prescribed analytically.
var advected = []string{"T", "Y_H2", "Y_O2", "Y_H2O", "Y_OH", "Y_HO2", "Y_H2O2", "Y_H", "Y_O"}

// Config holds the proxy's physical and numerical parameters.
type Config struct {
	Global     grid.Box // global grid
	Px, Py, Pz int      // domain decomposition

	Dt          float64 // time step (grid spacing is 1)
	Diffusivity float64 // scalar diffusivity
	// SubSteps subdivides each Step into explicit sub-iterations of
	// dt/SubSteps (default 1). S3D advances with many small RK
	// substeps dominated by chemistry; raising SubSteps reproduces
	// that per-point cost so the in-situ-to-simulation time ratios of
	// the paper's Table II keep their shape.
	SubSteps int

	// Jet parameters: the jet flows in +x, centered in (y,z).
	JetVelocity float64 // centerline velocity
	CoflowV     float64 // coflow velocity
	JetRadius   float64 // jet half-width in grid points
	CoflowT     float64 // heated-coflow temperature
	FuelT       float64 // cold fuel temperature

	// Turbulence: amplitude and number of vortical modes.
	TurbAmp   float64
	TurbModes int

	// Single-step H2 chemistry.
	ReactA      float64 // pre-exponential factor
	ReactTa     float64 // activation temperature
	HeatRelease float64 // temperature rise per unit reaction

	// Ignition kernels.
	KernelRate     float64 // expected births per step
	KernelLifetime int     // steps a kernel persists
	KernelAmp      float64 // peak temperature bump
	KernelRadius   float64 // gaussian radius in grid points

	Seed int64
}

// DefaultConfig returns parameters tuned for laptop-scale grids: a
// lifted jet with visible flame-base intermittency.
func DefaultConfig(global grid.Box, px, py, pz int) Config {
	return Config{
		Global:         global,
		Px:             px,
		Py:             py,
		Pz:             pz,
		Dt:             0.2,
		Diffusivity:    0.08,
		JetVelocity:    1.2,
		CoflowV:        0.3,
		JetRadius:      float64(global.Dims()[1]) / 6,
		CoflowT:        0.65,
		FuelT:          0.3,
		TurbAmp:        0.35,
		TurbModes:      5,
		ReactA:         4.0,
		ReactTa:        6.0,
		HeatRelease:    2.2,
		KernelRate:     0.4,
		KernelLifetime: 10,
		KernelAmp:      1.1,
		KernelRadius:   2.5,
		Seed:           1,
	}
}

// Sim is the shared, immutable description of one simulation run.
type Sim struct {
	cfg   Config
	dc    *grid.Decomp
	modes []turbMode
}

// turbMode is one vortical perturbation mode.
type turbMode struct {
	kx, ky, kz float64
	ax, ay, az float64
	phase      float64
	omega      float64
}

// New validates the configuration and precomputes the turbulence
// modes.
func New(cfg Config) (*Sim, error) {
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("sim: time step must be positive")
	}
	if cfg.SubSteps < 0 {
		return nil, fmt.Errorf("sim: SubSteps must be >= 0 (0 means 1)")
	}
	sub := cfg.SubSteps
	if sub == 0 {
		sub = 1
	}
	dtSub := cfg.Dt / float64(sub)
	// Upwind stability needs dt*(|u|+|v|+|w|) + 6 D dt <= 1; the
	// turbulence adds at most TurbAmp per component.
	vmax := math.Abs(cfg.JetVelocity) + 3*cfg.TurbAmp
	if dtSub*vmax+6*cfg.Diffusivity*dtSub > 0.9 {
		return nil, fmt.Errorf("sim: CFL violation: dt=%g too large for velocity bound %g",
			dtSub, vmax)
	}
	if cfg.Diffusivity*cfg.Dt > 1.0/6 {
		return nil, fmt.Errorf("sim: diffusive stability violated: D*dt=%g > 1/6", cfg.Diffusivity*cfg.Dt)
	}
	if cfg.KernelLifetime < 1 {
		return nil, fmt.Errorf("sim: kernel lifetime must be >= 1")
	}
	dc, err := grid.NewDecomp(cfg.Global, cfg.Px, cfg.Py, cfg.Pz)
	if err != nil {
		return nil, err
	}
	s := &Sim{cfg: cfg, dc: dc}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.Global.Dims()
	// Per-mode amplitudes are bounded to [-1,1] and normalized by the
	// mode count at evaluation, so the total turbulent velocity never
	// exceeds TurbAmp per component — keeping the CFL check honest.
	for m := 0; m < cfg.TurbModes; m++ {
		k := [3]float64{
			2 * math.Pi * float64(1+rng.Intn(3)) / float64(d[0]),
			2 * math.Pi * float64(1+rng.Intn(3)) / float64(max(d[1], 2)),
			2 * math.Pi * float64(1+rng.Intn(3)) / float64(max(d[2], 2)),
		}
		s.modes = append(s.modes, turbMode{
			kx: k[0], ky: k[1], kz: k[2],
			ax:    2*rng.Float64() - 1,
			ay:    2*rng.Float64() - 1,
			az:    2*rng.Float64() - 1,
			phase: rng.Float64() * 2 * math.Pi,
			omega: 0.02 + 0.05*rng.Float64(),
		})
	}
	return s, nil
}

// Config returns the run configuration.
func (s *Sim) Config() Config { return s.cfg }

// Decomp returns the domain decomposition.
func (s *Sim) Decomp() *grid.Decomp { return s.dc }

// Ranks returns the number of simulation ranks.
func (s *Sim) Ranks() int { return s.dc.Ranks() }

// Kernel is one ignition event: a gaussian temperature/radical bump
// injected at the flame base for Lifetime steps.
type Kernel struct {
	Birth   int
	X, Y, Z float64
	Amp     float64
	Radius  float64
}

// kernelsBorn deterministically generates the kernels born at a step
// (Poisson arrivals; positions in the flame-base region).
func (s *Sim) kernelsBorn(step int) []Kernel {
	rng := rand.New(rand.NewSource(s.cfg.Seed*1000003 + int64(step)))
	// Knuth Poisson sampler.
	l := math.Exp(-s.cfg.KernelRate)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			break
		}
		k++
	}
	d := s.cfg.Global.Dims()
	var out []Kernel
	for i := 0; i < k; i++ {
		out = append(out, Kernel{
			Birth: step,
			// Flame base: 15-30% downstream.
			X: (0.15 + 0.15*rng.Float64()) * float64(d[0]),
			// Within the jet shear layer.
			Y:      float64(d[1])/2 + (rng.Float64()-0.5)*2*s.cfg.JetRadius,
			Z:      float64(d[2])/2 + (rng.Float64()-0.5)*2*s.cfg.JetRadius,
			Amp:    s.cfg.KernelAmp * (0.7 + 0.6*rng.Float64()),
			Radius: s.cfg.KernelRadius * (0.8 + 0.4*rng.Float64()),
		})
	}
	return out
}

// ActiveKernels returns all kernels alive at a step.
func (s *Sim) ActiveKernels(step int) []Kernel {
	var out []Kernel
	for b := step - s.cfg.KernelLifetime + 1; b <= step; b++ {
		if b < 0 {
			continue
		}
		out = append(out, s.kernelsBorn(b)...)
	}
	return out
}

// velocity returns the prescribed velocity at continuous position
// (x,y,z) and time t: jet profile plus vortical modes.
func (s *Sim) velocity(x, y, z, t float64) (u, v, w float64) {
	d := s.cfg.Global.Dims()
	cy, cz := float64(d[1])/2, float64(d[2])/2
	r2 := ((y-cy)*(y-cy) + (z-cz)*(z-cz)) / (s.cfg.JetRadius * s.cfg.JetRadius)
	u = s.cfg.CoflowV + (s.cfg.JetVelocity-s.cfg.CoflowV)*math.Exp(-r2)
	if len(s.modes) == 0 {
		return
	}
	amp := s.cfg.TurbAmp / float64(len(s.modes))
	for _, m := range s.modes {
		ph := m.kx*x + m.ky*y + m.kz*z + m.phase + m.omega*t
		u += amp * m.ax * math.Sin(ph)
		v += amp * m.ay * math.Sin(ph+1.0)
		w += amp * m.az * math.Cos(ph)
	}
	return
}

// inflowProfile returns the inlet (x=0) values for each advected
// variable at (y,z): a cold fuel jet in a heated air coflow.
func (s *Sim) inflowProfile(y, z float64) map[string]float64 {
	d := s.cfg.Global.Dims()
	cy, cz := float64(d[1])/2, float64(d[2])/2
	r2 := ((y-cy)*(y-cy) + (z-cz)*(z-cz)) / (s.cfg.JetRadius * s.cfg.JetRadius)
	jet := math.Exp(-r2) // 1 in the jet core, 0 in the coflow
	return map[string]float64{
		"T":      s.cfg.FuelT*jet + s.cfg.CoflowT*(1-jet),
		"Y_H2":   0.9 * jet,
		"Y_O2":   0.22 * (1 - jet),
		"Y_H2O":  0.005,
		"Y_OH":   0,
		"Y_HO2":  0,
		"Y_H2O2": 0,
		"Y_H":    0,
		"Y_O":    0,
	}
}
