package sim

import (
	"math"
	"testing"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

func smallConfig(px, py, pz int) Config {
	cfg := DefaultConfig(grid.NewBox(24, 12, 8), px, py, pz)
	cfg.KernelRate = 0.8
	return cfg
}

// runSim advances the simulation `steps` steps on the given
// decomposition and returns the global fields named in want.
func runSim(t *testing.T, cfg Config, steps int, want []string) map[string]*grid.Field {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*grid.Field)
	for _, name := range want {
		out[name] = grid.NewField(name, cfg.Global)
	}
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	comm.Run(s.Ranks(), func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		rk.RunSteps(steps)
		<-mu
		for _, name := range want {
			out[name].Paste(rk.Field(name))
		}
		mu <- struct{}{}
	})
	return out
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	cfg.Dt = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero dt must error")
	}
	cfg = smallConfig(1, 1, 1)
	cfg.Dt = 10
	if _, err := New(cfg); err == nil {
		t.Fatal("CFL violation must error")
	}
	cfg = smallConfig(1, 1, 1)
	cfg.Diffusivity = 5
	if _, err := New(cfg); err == nil {
		t.Fatal("diffusive instability must error")
	}
	cfg = smallConfig(1, 1, 1)
	cfg.KernelLifetime = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero kernel lifetime must error")
	}
	cfg = smallConfig(100, 1, 1)
	if _, err := New(cfg); err == nil {
		t.Fatal("overdecomposition must error")
	}
}

func TestWorldSizeMismatch(t *testing.T) {
	s, err := New(smallConfig(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	comm.Run(3, func(r *comm.Rank) {
		if _, err := s.NewRank(r); err == nil {
			t.Error("world size mismatch must error")
		}
	})
}

// TestDecompositionIndependence is the key numerical property: the
// fields after N steps are bitwise identical for 1, 2x2x1 and 3x2x2
// rank layouts.
func TestDecompositionIndependence(t *testing.T) {
	vars := []string{"T", "Y_H2", "Y_OH", "u"}
	ref := runSim(t, smallConfig(1, 1, 1), 8, vars)
	for _, p := range [][3]int{{2, 2, 1}, {3, 2, 2}, {4, 1, 2}} {
		got := runSim(t, smallConfig(p[0], p[1], p[2]), 8, vars)
		for _, name := range vars {
			for idx := range ref[name].Data {
				if got[name].Data[idx] != ref[name].Data[idx] {
					i, j, k := ref[name].Box.Point(idx)
					t.Fatalf("decomp %v: %s differs at (%d,%d,%d): %g vs %g",
						p, name, i, j, k, got[name].Data[idx], ref[name].Data[idx])
				}
			}
		}
	}
}

func TestFieldsStayPhysical(t *testing.T) {
	fields := runSim(t, smallConfig(2, 2, 1), 25, []string{"T", "Y_H2", "Y_O2", "Y_N2", "Y_OH"})
	for _, name := range []string{"Y_H2", "Y_O2", "Y_N2", "Y_OH"} {
		lo, hi := fields[name].MinMax()
		if lo < -1e-9 || hi > 1.0+1e-9 {
			t.Fatalf("%s out of [0,1]: [%g, %g]", name, lo, hi)
		}
	}
	lo, hi := fields["T"].MinMax()
	if lo < 0 || hi > 10 || math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("temperature unphysical: [%g, %g]", lo, hi)
	}
	if hi <= lo {
		t.Fatal("temperature field is constant; dynamics missing")
	}
}

func TestReactionConsumesFuel(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	cfg.KernelRate = 0 // isolate chemistry
	before := runSim(t, cfg, 1, []string{"Y_H2", "Y_H2O"})
	after := runSim(t, cfg, 30, []string{"Y_H2", "Y_H2O"})
	sum := func(f *grid.Field) float64 {
		s := 0.0
		for _, v := range f.Data {
			s += v
		}
		return s
	}
	if sum(after["Y_H2O"]) <= sum(before["Y_H2O"]) {
		t.Fatal("water must be produced over time")
	}
}

func TestKernelDeterminism(t *testing.T) {
	s, _ := New(smallConfig(1, 1, 1))
	a := s.ActiveKernels(20)
	b := s.ActiveKernels(20)
	if len(a) != len(b) {
		t.Fatal("kernel generation must be deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("kernel generation must be deterministic")
		}
	}
}

func TestKernelLifetimeWindow(t *testing.T) {
	cfg := smallConfig(1, 1, 1)
	cfg.KernelRate = 2
	s, _ := New(cfg)
	// A kernel born at step b must be active exactly for steps
	// [b, b+lifetime).
	born := s.kernelsBorn(5)
	if len(born) == 0 {
		t.Skip("no kernel born at step 5 with this seed")
	}
	countAt := func(step int) int {
		n := 0
		for _, k := range s.ActiveKernels(step) {
			if k.Birth == 5 {
				n++
			}
		}
		return n
	}
	if countAt(5) != len(born) || countAt(5+cfg.KernelLifetime-1) != len(born) {
		t.Fatal("kernel must be active through its lifetime")
	}
	if countAt(4) != 0 || countAt(5+cfg.KernelLifetime) != 0 {
		t.Fatal("kernel active outside its lifetime")
	}
}

// TestKernelCreatesTransientFeature verifies the Fig. 1 phenomenology:
// an ignition kernel produces a localized temperature bump that decays
// after its lifetime.
func TestKernelCreatesTransientFeature(t *testing.T) {
	cfg := DefaultConfig(grid.NewBox(32, 16, 8), 1, 1, 1)
	cfg.KernelRate = 0 // no random kernels
	cfg.TurbAmp = 0    // quiescent, to isolate the bump
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive one rank manually and inject a single kernel by hand.
	comm.Run(1, func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		baseline, _ := rk.Field("T").MinMax()
		_ = baseline
		_, hi0 := rk.Field("T").MinMax()
		kern := Kernel{Birth: 0, X: 8, Y: 8, Z: 4, Amp: 2, Radius: 2}
		for step := 0; step < cfg.KernelLifetime; step++ {
			rk.fillVelocity(float64(step) * cfg.Dt)
			rk.advanceScalars(cfg.Dt)
			rk.react(cfg.Dt)
			// Manual injection mirroring injectKernels.
			rk.injectOne(kern, step)
			rk.fullExchange()
			rk.updateN2()
			rk.step++
		}
		_, hiMid := rk.Field("T").MinMax()
		if hiMid <= hi0+0.2 {
			t.Errorf("kernel did not create a feature: %g -> %g", hi0, hiMid)
			return
		}
		// Let it advect/diffuse away.
		for step := 0; step < 60; step++ {
			rk.Step()
		}
		_, hiEnd := rk.Field("T").MinMax()
		if hiEnd > hiMid {
			t.Errorf("feature did not decay: %g -> %g", hiMid, hiEnd)
		}
	})
}

func TestGhostedFieldCoversGhostBox(t *testing.T) {
	s, _ := New(smallConfig(2, 1, 1))
	comm.Run(2, func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			t.Error(err)
			return
		}
		g := rk.GhostedField("T")
		if g.Box != rk.OwnedBox().Grow(1) {
			t.Errorf("ghost box wrong: %v vs %v", g.Box, rk.OwnedBox().Grow(1))
		}
		if rk.Field("nope") != nil {
			t.Error("unknown variable must return nil")
		}
	})
}

func TestVarNamesComplete(t *testing.T) {
	if len(VarNames) != 14 {
		t.Fatalf("the paper's runs use 14 variables, got %d", len(VarNames))
	}
	s, _ := New(smallConfig(1, 1, 1))
	comm.Run(1, func(r *comm.Rank) {
		rk, _ := s.NewRank(r)
		for _, name := range VarNames {
			if rk.Field(name) == nil {
				t.Errorf("variable %s missing", name)
			}
		}
	})
}
