package staging

import (
	"errors"
	"testing"
	"time"

	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/faults"
)

// TestCreditSettledOnRequeueThenDeadLetter: a credited task that burns
// its whole attempt budget (requeue, requeue, dead-letter) must hold
// its credit across every requeue and release it exactly once, when
// the dead-letter Result finally settles — the no-leak guarantee the
// drain-time invariant depends on.
func TestCreditSettledOnRequeueThenDeadLetter(t *testing.T) {
	r := newRig(t)
	if err := r.ds.EnableCredits(2, nil); err != nil {
		t.Fatal(err)
	}
	// Every transfer drops: each attempt's pull fails and failTask
	// requeues until the budget is gone.
	r.fabric.Network().SetFaults(faults.New(faults.Config{Seed: 3, Default: faults.Rates{Drop: 1}}))
	r.fabric.SetRetryPolicy(dart.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
	a, err := New(r.fabric, r.ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("work", func(task dataspaces.Task, data [][]byte) (any, error) {
		return nil, nil
	})
	a.Start()

	c := r.ds.Credits()
	if !c.Acquire("work") {
		t.Fatal("acquire must succeed")
	}
	h := r.prod.RegisterMem([]byte("unreachable"))
	_, err = r.ds.SubmitSpec(dataspaces.TaskSpec{
		Analysis: "work",
		Step:     1,
		Inputs:   []dataspaces.Descriptor{{Name: "work", Version: 1, Handle: h}},
		Credited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-a.Results()
	if !res.DeadLetter || !errors.Is(res.Err, ErrDeadLetter) {
		t.Fatalf("want dead-letter result, got err=%v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want the full budget of 3", res.Attempts)
	}
	if got := c.Outstanding(); got != 0 {
		t.Fatalf("credit leaked through requeue->dead-letter: outstanding=%d", got)
	}
	if c.Available() != c.Total() {
		t.Fatalf("account did not drain: avail=%d total=%d", c.Available(), c.Total())
	}
	r.ds.Close()
	a.Wait()
}

// TestCreditSettledOnSuccess: the normal path — a credited task's
// credit is released when its successful Result is emitted, making it
// re-acquirable for the next admitted step.
func TestCreditSettledOnSuccess(t *testing.T) {
	r := newRig(t)
	if err := r.ds.EnableCredits(1, nil); err != nil {
		t.Fatal(err)
	}
	a, err := New(r.fabric, r.ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("work", func(task dataspaces.Task, data [][]byte) (any, error) {
		return string(data[0]), nil
	})
	a.Start()
	c := r.ds.Credits()
	if !c.Acquire("work") {
		t.Fatal("acquire must succeed")
	}
	h := r.prod.RegisterMem([]byte("payload"))
	_, err = r.ds.SubmitSpec(dataspaces.TaskSpec{
		Analysis: "work",
		Step:     1,
		Inputs:   []dataspaces.Descriptor{{Name: "work", Version: 1, Handle: h}},
		Credited: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-a.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := c.Outstanding(); got != 0 {
		t.Fatalf("success must settle the credit, outstanding=%d", got)
	}
	if !c.Acquire("work") {
		t.Fatal("settled credit must be re-acquirable")
	}
	c.Release("work")
	r.ds.Close()
	a.Wait()
}
