package staging

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"insitu/internal/dataspaces"
)

func waitActive(t *testing.T, a *Area, want int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		if a.ActiveBuckets() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("active buckets = %d, want %d", a.ActiveBuckets(), want)
}

func TestAddAndRetireBuckets(t *testing.T) {
	r := newRig(t)
	a, err := New(r.fabric, r.ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("echo", func(task dataspaces.Task, data [][]byte) (any, error) {
		return task.Step, nil
	})
	a.Start()
	if got := a.ActiveBuckets(); got != 2 {
		t.Fatalf("initial active = %d, want 2", got)
	}

	id := a.AddBucket()
	if id != 2 {
		t.Fatalf("added bucket id = %d, want 2", id)
	}
	waitActive(t, a, 3)

	// The added bucket serves traffic: with three buckets parked, three
	// concurrent tasks all complete.
	for s := 1; s <= 6; s++ {
		r.publish(t, "echo", s)
	}
	seen := 0
	for seen < 6 {
		select {
		case res := <-a.Results():
			if res.Err != nil {
				t.Fatalf("task err: %v", res.Err)
			}
			seen++
		case <-time.After(5 * time.Second):
			t.Fatalf("drained %d of 6 results", seen)
		}
	}

	// Retire two: pool shrinks to 1 with no task loss; bucket 0 is
	// never retired.
	if !a.RetireBucket() || !a.RetireBucket() {
		t.Fatal("retire failed with eligible buckets")
	}
	waitActive(t, a, 1)
	if a.RetireBucket() {
		t.Fatal("retired bucket 0 (probe host)")
	}

	// The surviving bucket still serves.
	r.publish(t, "echo", 7)
	select {
	case res := <-a.Results():
		if res.Err != nil {
			t.Fatalf("post-shrink task err: %v", res.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-shrink task never completed")
	}

	r.ds.Close()
	a.Wait()
}

func TestRetireMidTaskFinishesAndSettles(t *testing.T) {
	r := newRig(t)
	if err := r.ds.EnableCredits(2, nil); err != nil {
		t.Fatal(err)
	}
	a, err := New(r.fabric, r.ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	a.Handle("slow", func(task dataspaces.Task, data [][]byte) (any, error) {
		<-gate
		return "done", nil
	})
	a.Start()

	c := r.ds.Credits()
	// Occupy BOTH buckets with blocked tasks so the retired one is
	// guaranteed to be mid-task.
	for s := 1; s <= 2; s++ {
		if !c.Acquire("slow") {
			t.Fatal("acquire")
		}
		h := r.prod.RegisterMem([]byte("payload"))
		if _, err := r.ds.SubmitSpec(dataspaces.TaskSpec{
			Analysis: "slow", Step: s, Credited: true,
			Inputs: []dataspaces.Descriptor{{Name: "slow", Version: s, Rank: 0, Handle: h}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500 && r.ds.Assigned() < 2; i++ {
		time.Sleep(time.Millisecond)
	}
	if r.ds.Assigned() < 2 {
		t.Fatal("buckets never picked up the tasks")
	}
	a.RetireBucket()
	close(gate)

	for i := 0; i < 2; i++ {
		select {
		case res := <-a.Results():
			if res.Err != nil {
				t.Fatalf("task err: %v", res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("task held by retiring bucket was lost")
		}
	}
	// Credit settled exactly once.
	out, avail, total := c.Snapshot()
	if out != 0 || avail != total {
		t.Fatalf("credits after drain: outstanding %d available %d total %d", out, avail, total)
	}
	waitActive(t, a, 1)
	r.ds.Close()
	a.Wait()
}

func TestTenantScopedHandlers(t *testing.T) {
	r := newRig(t)
	a, err := New(r.fabric, r.ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range []string{"alpha", "beta"} {
		tn := tn
		a.HandleT(tn, "viz", func(task dataspaces.Task, data [][]byte) (any, error) {
			return tn, nil
		})
	}
	a.Start()
	for _, tn := range []string{"alpha", "beta"} {
		if _, err := r.ds.SubmitSpec(dataspaces.TaskSpec{Tenant: tn, Analysis: "viz", Step: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case res := <-a.Results():
			if res.Err != nil {
				t.Fatalf("task err: %v", res.Err)
			}
			if res.Output != res.Task.Tenant {
				t.Fatalf("tenant %q dispatched to handler %v", res.Task.Tenant, res.Output)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("tenant task never completed")
		}
	}
	r.ds.Close()
	a.Wait()
}

func TestDeadLetterErrorCarriesTenantAndHistory(t *testing.T) {
	r := newRig(t)
	a, err := New(r.fabric, r.ds, 1, WithMaxAttempts(2))
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	// A task whose inputs reference an unregistered handle fails its
	// pulls on every attempt and dead-letters.
	bad := r.prod.RegisterMem([]byte("x"))
	if err := r.prod.Release(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ds.SubmitSpec(dataspaces.TaskSpec{
		Tenant: "noisy", Analysis: "poison", Step: 3,
		Inputs: []dataspaces.Descriptor{{Name: "poison", Version: 3, Rank: 0, Handle: bad}},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-a.Results():
		if !res.DeadLetter {
			t.Fatalf("result not dead-lettered: %+v", res)
		}
		var dl *DeadLetterError
		if !errors.As(res.Err, &dl) {
			t.Fatalf("err %T does not unwrap to DeadLetterError", res.Err)
		}
		if !errors.Is(res.Err, ErrDeadLetter) {
			t.Fatal("err does not unwrap to ErrDeadLetter")
		}
		if dl.Tenant != "noisy" || dl.Analysis != "poison" || dl.Step != 3 {
			t.Fatalf("dead-letter identity = %+v", dl)
		}
		if len(dl.History) != 2 {
			t.Fatalf("attempt history = %v, want 2 entries", dl.History)
		}
		for i, line := range dl.History {
			if want := fmt.Sprintf("attempt %d", i+1); len(line) == 0 || line[:9] != want {
				t.Fatalf("history[%d] = %q, want prefix %q", i, line, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead-letter never surfaced")
	}
	r.ds.Close()
	a.Wait()
}
