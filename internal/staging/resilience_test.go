package staging

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/faults"
)

// TestCrashedBucketRequeuesTask: a killed bucket hands its task back to
// the queue, a replacement goroutine respawns, and the retry completes
// the work with the attempt recorded.
func TestCrashedBucketRequeuesTask(t *testing.T) {
	r := newRig(t)
	a, err := New(r.fabric, r.ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("work", func(task dataspaces.Task, data [][]byte) (any, error) {
		return string(data[0]), nil
	})
	a.Start()
	// Kill bucket 0 while it is parked on BucketReady: the next task it
	// is assigned hits the at-assignment checkpoint and is requeued.
	if !a.CrashBucket(0) {
		t.Fatal("CrashBucket(0) refused a valid id")
	}
	if a.CrashBucket(1) {
		t.Fatal("CrashBucket must reject an out-of-range id")
	}
	r.publish(t, "work", 1, []byte("payload"))
	select {
	case res := <-a.Results():
		if res.Err != nil {
			t.Fatalf("retry after crash failed: %v", res.Err)
		}
		if res.Output != "payload" {
			t.Fatalf("wrong output: %v", res.Output)
		}
		if res.Attempts != 2 {
			t.Fatalf("want 2 attempts (crash + success), got %d", res.Attempts)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("task never completed after bucket crash — no respawn?")
	}
	st := a.Resilience()
	if st.Crashes != 1 || st.Requeues != 1 || st.DeadLetters != 0 {
		t.Fatalf("resilience stats %+v", st)
	}
	r.ds.Close()
	a.Wait()
}

// TestDeadLetterAfterMaxAttempts: with a budget of one attempt, a crash
// dead-letters the task — the Result carries ErrDeadLetter and the
// pinned producer regions are released rather than leaked.
func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	r := newRig(t)
	var released atomic.Int64
	a, err := New(r.fabric, r.ds, 1,
		WithMaxAttempts(1),
		WithRelease(func(d dataspaces.Descriptor) { released.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("work", func(task dataspaces.Task, data [][]byte) (any, error) {
		return nil, nil
	})
	a.Start()
	a.CrashBucket(0)
	r.publish(t, "work", 1, []byte("x"), []byte("y"))
	res := <-a.Results()
	if !res.DeadLetter || !errors.Is(res.Err, ErrDeadLetter) {
		t.Fatalf("want dead-letter result, got %+v", res)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if released.Load() != 2 {
		t.Fatalf("dead-letter must release all %d inputs, released %d", 2, released.Load())
	}
	st := a.Resilience()
	if st.DeadLetters != 1 || st.Requeues != 0 {
		t.Fatalf("resilience stats %+v", st)
	}
	r.ds.Close()
	a.Wait()
}

// TestPullFailureRequeuesThenDeadLetters: a task whose inputs can never
// be pulled (every transfer dropped) burns through the attempt budget
// via requeues and ends as a dead letter, releasing its inputs exactly
// once.
func TestPullFailureRequeuesThenDeadLetters(t *testing.T) {
	r := newRig(t)
	r.fabric.Network().SetFaults(faults.New(faults.Config{Seed: 3, Default: faults.Rates{Drop: 1}}))
	r.fabric.SetRetryPolicy(dart.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
	var released atomic.Int64
	a, err := New(r.fabric, r.ds, 1,
		WithRelease(func(d dataspaces.Descriptor) { released.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("work", func(task dataspaces.Task, data [][]byte) (any, error) {
		return nil, nil
	})
	a.Start()
	r.publish(t, "work", 1, []byte("unreachable"))
	res := <-a.Results()
	if !res.DeadLetter || !errors.Is(res.Err, ErrDeadLetter) {
		t.Fatalf("want dead-letter result, got err=%v", res.Err)
	}
	if res.Attempts != 3 {
		t.Fatalf("attempts = %d, want the default budget of 3", res.Attempts)
	}
	if released.Load() != 1 {
		t.Fatalf("input released %d times, want exactly once", released.Load())
	}
	st := a.Resilience()
	if st.Requeues != 2 || st.DeadLetters != 1 || st.Crashes != 0 {
		t.Fatalf("resilience stats %+v", st)
	}
	r.ds.Close()
	a.Wait()
}

// TestHandlerErrorFreesBucket: satellite coverage for safeHandler's
// non-panic path — a handler returning an error yields an errored
// Result (no requeue: deterministic failures would just repeat) and the
// bucket keeps serving.
func TestHandlerErrorFreesBucket(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	calls := 0
	a.Handle("flaky", func(task dataspaces.Task, data [][]byte) (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("bad statistics")
		}
		return "ok", nil
	})
	a.Start()
	r.publish(t, "flaky", 1, []byte("x"))
	res := <-a.Results()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "bad statistics") {
		t.Fatalf("handler error lost: %v", res.Err)
	}
	if res.DeadLetter || res.Attempts != 1 {
		t.Fatalf("handler errors must not requeue: %+v", res)
	}
	r.publish(t, "flaky", 2, []byte("x"))
	res = <-a.Results()
	if res.Err != nil || res.Output != "ok" {
		t.Fatalf("bucket did not survive the handler error: %+v", res)
	}
	if a.Resilience().Requeues != 0 {
		t.Fatal("handler error must not consume the attempt budget")
	}
	r.ds.Close()
	a.Wait()
}

// TestStreamHandlerErrorFreesBucket: satellite coverage for
// runStreamTask's error propagation — a streaming handler returning an
// error (not panicking) surfaces it and frees the bucket.
func TestStreamHandlerErrorFreesBucket(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	calls := 0
	a.HandleStream("stream", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
		calls++
		for range in {
		}
		if calls == 1 {
			return nil, errors.New("stream decode failure")
		}
		return "streamed", nil
	})
	a.Start()
	r.publish(t, "stream", 1, []byte("a"), []byte("b"))
	res := <-a.Results()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "stream decode failure") {
		t.Fatalf("stream handler error lost: %v", res.Err)
	}
	r.publish(t, "stream", 2, []byte("c"))
	res = <-a.Results()
	if res.Err != nil || res.Output != "streamed" {
		t.Fatalf("bucket did not survive the stream error: %+v", res)
	}
	r.ds.Close()
	a.Wait()
}

// TestStreamPullErrorPropagates: when a streaming task's pulls fail the
// handler still gets a cleanly closed channel and the pull error lands
// on the Result; the bucket survives.
func TestStreamPullErrorPropagates(t *testing.T) {
	r := newRig(t)
	net := r.fabric.Network()
	r.fabric.SetRetryPolicy(dart.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond})
	a, _ := New(r.fabric, r.ds, 1)
	a.HandleStream("stream", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
		n := 0
		for range in {
			n++
		}
		return n, nil
	})
	a.Start()
	net.SetFaults(faults.New(faults.Config{Seed: 5, Default: faults.Rates{Drop: 1}}))
	r.publish(t, "stream", 1, []byte("gone"))
	res := <-a.Results()
	if res.Err == nil || !errors.Is(res.Err, dart.ErrDeadline) && !strings.Contains(res.Err.Error(), "dropped") {
		t.Fatalf("pull failure not propagated: %v", res.Err)
	}
	// Heal the fabric; the bucket must still be serving.
	net.SetFaults(nil)
	r.publish(t, "stream", 2, []byte("back"))
	res = <-a.Results()
	if res.Err != nil || res.Output != 1 {
		t.Fatalf("bucket did not survive the pull failure: %+v", res)
	}
	r.ds.Close()
	a.Wait()
}

// TestProbeHandle: the health-probe region is pullable.
func TestProbeHandle(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 2)
	h := a.ProbeHandle()
	if _, _, err := r.prod.Get(h); err != nil {
		t.Fatalf("probe region not pullable: %v", err)
	}
	r.ds.Close()
	a.Start()
	a.Wait()
}
