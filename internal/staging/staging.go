// Package staging implements the staging area of the hybrid framework:
// a set of dedicated cores ("staging buckets") that issue bucket-ready
// requests to the DataSpaces task queue, asynchronously pull the
// in-situ intermediate data over DART, and execute the in-transit
// stage of each analysis.
//
// Because every bucket independently pulls the next pending task,
// successive timesteps of the same analysis are automatically mapped
// onto different buckets — the paper's temporal multiplexing — so the
// time to complete an analysis is decoupled from the time to advance
// the simulation.
package staging

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/bufpool"
	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/obs"
)

// ErrDeadLetter marks a task that exhausted its attempt budget: it was
// handed to buckets MaxAttempts times and every attempt failed (bucket
// crash or unpullable inputs). The dead-letter Result carries it so
// the pipeline can mark the step explicitly degraded instead of
// silently losing it.
var ErrDeadLetter = errors.New("staging: task dead-lettered")

// DeadLetterError is the typed dead-letter report: it names the
// originating tenant and carries the task's full attempt history so a
// multi-tenant operator can see whose task died and how, instead of
// one anonymous global counter line. It unwraps to both ErrDeadLetter
// and the last underlying cause.
type DeadLetterError struct {
	Tenant   string
	Analysis string
	Step     int
	TaskID   int64
	Attempts int
	// History is one line per failed attempt, oldest first.
	History []string
	// Last is the failure that exhausted the attempt budget.
	Last error
}

// Error keeps the legacy single-tenant message shape.
func (e *DeadLetterError) Error() string {
	return fmt.Sprintf("staging: task %d (%s step %d) failed %d attempts: %v (last: %v)",
		e.TaskID, e.Analysis, e.Step, e.Attempts, ErrDeadLetter, e.Last)
}

// Unwrap exposes both the dead-letter marker and the last cause to
// errors.Is/As.
func (e *DeadLetterError) Unwrap() []error { return []error{ErrDeadLetter, e.Last} }

// Handler executes the in-transit stage of one analysis. It receives
// the task and the pulled input payloads, ordered as in Task.Inputs,
// and returns an arbitrary result object.
type Handler func(task dataspaces.Task, data [][]byte) (any, error)

// StreamInput is one pulled payload delivered to a streaming handler
// in arrival order, as soon as its transfer completes.
type StreamInput struct {
	Index int // position in Task.Inputs
	Rank  int // producing rank
	Data  []byte
}

// StreamHandler executes a *streaming* in-transit stage: it consumes
// inputs as they arrive instead of waiting for the full set — the
// paper's proposed improvement of "processing in-transit data in a
// streaming fashion, starting as soon as the first data arrives",
// hiding the in-transit computation behind the data movement. The
// channel closes after the last input; the handler then returns its
// result.
type StreamHandler func(task dataspaces.Task, inputs <-chan StreamInput) (any, error)

// Result records the outcome and cost breakdown of one in-transit task.
type Result struct {
	Task   dataspaces.Task
	Bucket int
	Output any
	Err    error

	// BytesMoved is the total intermediate data pulled for this task.
	BytesMoved int64
	// MoveModeled is the modeled duration of the data movement assuming
	// all pulls proceed concurrently (max over inputs), matching the
	// paper's per-step "data movement time".
	MoveModeled time.Duration
	// MoveModeledSum is the serialized (sum) modeled movement time.
	MoveModeledSum time.Duration
	// MoveWall is the measured wall-clock time of the pull phase.
	MoveWall time.Duration
	// ComputeWall is the measured wall-clock time of the handler.
	ComputeWall time.Duration
	// Start and End bound the task's execution for pipelining analysis.
	Start, End time.Time
	// Attempts is how many times the task was handed to a bucket,
	// including the attempt that produced this result.
	Attempts int
	// DeadLetter reports that the task exhausted its attempt budget;
	// Err then wraps ErrDeadLetter and the last underlying failure.
	DeadLetter bool
}

// Option configures an Area.
type Option func(*Area)

// WithRelease installs a callback invoked with each input descriptor
// after its data has been pulled, letting the producer release the
// pinned region.
func WithRelease(fn func(dataspaces.Descriptor)) Option {
	return func(a *Area) { a.release = fn }
}

// WithResultBuffer sets the capacity of the results channel
// (default 1024).
func WithResultBuffer(n int) Option {
	return func(a *Area) { a.resultCap = n }
}

// WithMaxAttempts bounds how many times a task may be handed to a
// bucket before it is dead-lettered (default 3). Attempts are consumed
// by bucket crashes and by failed pulls; handler errors and panics do
// not requeue, because re-running a deterministic analysis on the same
// inputs would fail the same way.
func WithMaxAttempts(n int) Option {
	return func(a *Area) {
		if n > 0 {
			a.maxAttempts = n
		}
	}
}

// WithPooledBuffers makes the buckets return pulled input payloads to
// the shared byte-buffer pool once the handler has finished with them,
// closing the Get-side of the zero-allocation transfer loop. It is
// opt-in because it imposes an ownership rule on handlers: a handler
// must not retain an input slice (or a sub-slice of it) past its
// return — it must copy anything it keeps. Every in-transit handler in
// core obeys this (they all decode payloads into their own structures),
// so the standard Pipeline enables the option.
func WithPooledBuffers() Option {
	return func(a *Area) { a.pooled = true }
}

// routeKey scopes a handler registration to one (tenant, analysis)
// route; single-tenant registrations use an empty tenant.
type routeKey struct {
	tenant   string
	analysis string
}

// Area is a running staging area.
type Area struct {
	svc  *dart.Fabric
	ds   *dataspaces.Service
	nbkt int

	mu       sync.Mutex
	points   []*dart.Endpoint // grows under AddBucket
	started  bool
	handlers map[routeKey]Handler
	streams  map[routeKey]StreamHandler
	release  func(dataspaces.Descriptor)
	busy     []int64 // per-bucket completed-task counts

	resultCap int
	pooled    bool
	results   chan Result
	wg        sync.WaitGroup

	maxAttempts int

	// kill holds one channel per bucket, replaced on every respawn:
	// closing the current generation's channel crashes that bucket at
	// its next checkpoint. retire holds one per bucket too, but is
	// never replaced: closing it drains the bucket out of the pool
	// gracefully at its next checkpoint-free boundary.
	killMu  sync.Mutex
	kill    []chan struct{}
	retire  []chan struct{}
	retired []bool

	active      atomic.Int64 // buckets currently in (or returning to) the pool
	crashes     atomic.Int64
	deadLetters atomic.Int64

	probe dart.MemHandle

	plane atomic.Pointer[obs.Plane]
}

// SetPlane attaches the observability plane: every task attempt records
// a span on its bucket's lane (with pull and run child spans), every
// final result records a terminal task.done event, crashes record
// bucket.crash events, and the failure counters are published as metric
// series. A nil plane is ignored.
func (a *Area) SetPlane(pl *obs.Plane) {
	if pl == nil {
		return
	}
	reg := pl.Registry()
	reg.CounterFunc("staging_crashes_total", "bucket crashes, each followed by a respawn",
		func() float64 { return float64(a.crashes.Load()) })
	reg.CounterFunc("staging_dead_letters_total", "tasks that exhausted their attempt budget",
		func() float64 { return float64(a.deadLetters.Load()) })
	a.plane.Store(pl)
}

// attempt is the open task.attempt span for one assigned task; a nil
// attempt (observability disabled) swallows all recording.
type attempt struct {
	act  *obs.Active
	rec  *obs.Recorder
	lane string
}

// beginAttempt opens the task.attempt span on the bucket's lane.
func (a *Area) beginAttempt(id int, task dataspaces.Task) *attempt {
	pl := a.plane.Load()
	if pl == nil {
		return nil
	}
	rec := pl.Recorder()
	lane := fmt.Sprintf("bucket-%d", id)
	act := rec.Begin(0, obs.CatTask, lane, "task.attempt",
		obs.Int64("task", task.ID),
		obs.Str("analysis", task.Analysis),
		obs.Int("step", task.Step),
		obs.Int("attempt", task.Attempts+1))
	return &attempt{act: act, rec: rec, lane: lane}
}

// child records a completed child span under the attempt.
func (at *attempt) child(name string, start, end time.Time, attrs ...obs.Attr) {
	if at == nil {
		return
	}
	at.rec.Record(at.act.ID(), obs.CatTask, at.lane, name, start, end, attrs...)
}

// end closes the attempt span with its outcome: "ok", "error",
// "requeue", or "dead-letter", plus whether the bucket crashed while
// holding the task.
func (at *attempt) end(res *Result, crashed bool) {
	if at == nil {
		return
	}
	outcome := "ok"
	var err error
	switch {
	case res == nil:
		outcome = "requeue"
	case res.DeadLetter:
		outcome, err = "dead-letter", res.Err
	case res.Err != nil:
		outcome, err = "error", res.Err
	}
	at.act.End(obs.Str("outcome", outcome), obs.Bool("crashed", crashed), obs.Error(err))
}

// observeDone records the terminal task.done event for a final result.
// Together with dataspaces' task.submit events this forms the lifecycle
// ledger: every submitted task id pairs with exactly one task.done.
func (a *Area) observeDone(id int, res *Result) {
	pl := a.plane.Load()
	if pl == nil {
		return
	}
	outcome := "ok"
	switch {
	case res.DeadLetter:
		outcome = "dead-letter"
	case res.Err != nil:
		outcome = "error"
	}
	pl.Recorder().Event(0, obs.CatTask, fmt.Sprintf("bucket-%d", id), "task.done", time.Now(),
		obs.Int64("task", res.Task.ID),
		obs.Str("analysis", res.Task.Analysis),
		obs.Int("step", res.Task.Step),
		obs.Str("outcome", outcome),
		obs.Int("attempts", res.Attempts))
}

// observeCrash records a bucket.crash event on the bucket's lane.
func (a *Area) observeCrash(id int) {
	pl := a.plane.Load()
	if pl == nil {
		return
	}
	pl.Recorder().Event(0, obs.CatTask, fmt.Sprintf("bucket-%d", id), "bucket.crash", time.Now())
}

// New creates a staging area with nbuckets bucket cores attached to
// the fabric, pulling work from ds. Start must be called to launch the
// bucket loops.
func New(fabric *dart.Fabric, ds *dataspaces.Service, nbuckets int, opts ...Option) (*Area, error) {
	if nbuckets < 1 {
		return nil, fmt.Errorf("staging: need at least one bucket, got %d", nbuckets)
	}
	a := &Area{
		svc:         fabric,
		ds:          ds,
		nbkt:        nbuckets,
		handlers:    make(map[routeKey]Handler),
		streams:     make(map[routeKey]StreamHandler),
		resultCap:   1024,
		busy:        make([]int64, nbuckets),
		maxAttempts: 3,
		kill:        make([]chan struct{}, nbuckets),
		retire:      make([]chan struct{}, nbuckets),
		retired:     make([]bool, nbuckets),
	}
	for _, o := range opts {
		o(a)
	}
	a.results = make(chan Result, a.resultCap)
	for i := 0; i < nbuckets; i++ {
		a.points = append(a.points, fabric.Register(fmt.Sprintf("bucket-%d", i)))
		a.kill[i] = make(chan struct{})
		a.retire[i] = make(chan struct{})
	}
	a.active.Store(int64(nbuckets))
	// A tiny always-registered region on bucket 0: pipelines probe the
	// transit path's health with a cheap Get against it before deciding
	// whether to submit hybrid work or degrade to in-situ.
	a.probe = a.points[0].RegisterMem(make([]byte, 16))
	return a, nil
}

// ProbeHandle returns the handle of a small persistent region on
// bucket 0's endpoint, used by pipelines as a transit-health probe.
func (a *Area) ProbeHandle() dart.MemHandle { return a.probe }

// Handle registers the in-transit stage for the named analysis in the
// tenant-less namespace. Handlers must be registered before Start.
func (a *Area) Handle(analysis string, h Handler) { a.HandleT("", analysis, h) }

// HandleT registers the in-transit stage for one (tenant, analysis)
// route, so two tenants running the same analysis name dispatch to
// their own handlers.
func (a *Area) HandleT(tenant, analysis string, h Handler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.handlers[routeKey{tenant, analysis}] = h
}

// HandleStream registers a streaming in-transit stage for the named
// analysis in the tenant-less namespace. A streaming handler takes
// precedence over a buffered one registered under the same route.
func (a *Area) HandleStream(analysis string, h StreamHandler) { a.HandleStreamT("", analysis, h) }

// HandleStreamT registers a streaming in-transit stage for one
// (tenant, analysis) route.
func (a *Area) HandleStreamT(tenant, analysis string, h StreamHandler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.streams[routeKey{tenant, analysis}] = h
}

// Buckets returns the number of bucket cores the area started with;
// ActiveBuckets tracks the live pool under autoscaling.
func (a *Area) Buckets() int { return a.nbkt }

// ActiveBuckets returns the current bucket-pool size: started buckets
// plus added ones, minus retired ones. A crashed bucket still counts —
// its respawn is part of the pool.
func (a *Area) ActiveBuckets() int { return int(a.active.Load()) }

// Results returns the stream of completed in-transit tasks.
func (a *Area) Results() <-chan Result { return a.results }

// Start launches one goroutine per bucket. Each loops: bucket-ready →
// assigned task → pull inputs asynchronously → run handler → emit
// result, until the DataSpaces service closes.
func (a *Area) Start() {
	a.mu.Lock()
	n := len(a.points)
	a.started = true
	a.mu.Unlock()
	for i := 0; i < n; i++ {
		a.wg.Add(1)
		go a.bucketLoop(i)
	}
}

// AddBucket grows the pool by one bucket, registering its endpoint and
// (if the area has started) launching its loop immediately. It returns
// the new bucket's id.
func (a *Area) AddBucket() int {
	a.mu.Lock()
	id := len(a.points)
	a.points = append(a.points, a.svc.Register(fmt.Sprintf("bucket-%d", id)))
	a.busy = append(a.busy, 0)
	started := a.started
	a.mu.Unlock()
	a.killMu.Lock()
	a.kill = append(a.kill, make(chan struct{}))
	a.retire = append(a.retire, make(chan struct{}))
	a.retired = append(a.retired, false)
	a.killMu.Unlock()
	a.active.Add(1)
	if started {
		a.wg.Add(1)
		go a.bucketLoop(id)
	}
	return id
}

// RetireBucket shrinks the pool by one bucket, choosing the
// highest-numbered live bucket and draining it gracefully: a retiring
// bucket finishes (and settles) the task it holds, then exits instead
// of asking for more work — no task is lost and no credit settles
// twice. Bucket 0 is never retired (it hosts the transit-health probe
// region). It returns false when no bucket is eligible.
func (a *Area) RetireBucket() bool {
	a.killMu.Lock()
	defer a.killMu.Unlock()
	for id := len(a.retire) - 1; id > 0; id-- {
		if !a.retired[id] {
			a.retired[id] = true
			close(a.retire[id])
			return true
		}
	}
	return false
}

// Wait blocks until all bucket loops have exited (after the DataSpaces
// service is closed and remaining tasks drained), then closes the
// results channel.
func (a *Area) Wait() {
	a.wg.Wait()
	close(a.results)
}

// CompletedPerBucket returns a copy of per-bucket completed-task
// counts, used to verify FCFS load balancing.
func (a *Area) CompletedPerBucket() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int64, len(a.busy))
	copy(out, a.busy)
	return out
}

// CrashBucket kills the identified bucket at its next checkpoint: the
// task it is working on (or picks up next) is requeued — or
// dead-lettered if out of attempts — and a fresh bucket goroutine is
// respawned in its place, modeling a staging-node failure plus
// recovery. It returns false for an out-of-range id. Crashing an
// already-crashed bucket before its respawn is a no-op.
func (a *Area) CrashBucket(id int) bool {
	a.killMu.Lock()
	defer a.killMu.Unlock()
	if id < 0 || id >= len(a.kill) {
		return false
	}
	select {
	case <-a.kill[id]:
		// Already killed; the respawn will install a fresh channel.
	default:
		close(a.kill[id])
	}
	return true
}

// killCh returns the current generation's kill channel for a bucket.
func (a *Area) killCh(id int) chan struct{} {
	a.killMu.Lock()
	defer a.killMu.Unlock()
	return a.kill[id]
}

// retireCh returns the bucket's retire channel (never replaced).
func (a *Area) retireCh(id int) chan struct{} {
	a.killMu.Lock()
	defer a.killMu.Unlock()
	return a.retire[id]
}

// respawn installs a fresh kill channel and launches a replacement
// bucket goroutine after a crash — unless the bucket was retired while
// (or before) crashing, in which case it simply leaves the pool.
func (a *Area) respawn(id int) {
	a.killMu.Lock()
	if a.retired[id] {
		a.killMu.Unlock()
		a.active.Add(-1)
		return
	}
	a.kill[id] = make(chan struct{})
	a.killMu.Unlock()
	a.wg.Add(1)
	go a.bucketLoop(id)
}

// killed reports whether the generation's kill channel has been closed.
func killed(kill <-chan struct{}) bool {
	select {
	case <-kill:
		return true
	default:
		return false
	}
}

// ResilienceStats snapshots the staging area's failure counters.
type ResilienceStats struct {
	Crashes     int64 // bucket crashes (each followed by a respawn)
	Requeues    int64 // failed task attempts pushed back to the queue
	DeadLetters int64 // tasks that exhausted their attempt budget
}

// Resilience returns the failure counters.
func (a *Area) Resilience() ResilienceStats {
	return ResilienceStats{
		Crashes:     a.crashes.Load(),
		Requeues:    a.ds.Requeues(),
		DeadLetters: a.deadLetters.Load(),
	}
}

func (a *Area) bucketLoop(id int) {
	defer a.wg.Done()
	a.mu.Lock()
	ep := a.points[id]
	a.mu.Unlock()
	kill := a.killCh(id)
	retire := a.retireCh(id)
	for {
		select {
		case <-retire:
			a.active.Add(-1)
			return
		default:
		}
		task, err := a.ds.BucketReadyCancel(retire)
		if err != nil {
			if errors.Is(err, dataspaces.ErrCancelled) {
				a.active.Add(-1)
			}
			return
		}
		res, crashed := a.runTask(id, ep, kill, task)
		if res != nil {
			// This is the task's final result (requeues return nil), so
			// settle its flow-control credit exactly once, before the
			// result is visible to the drain: the producer must be able
			// to re-acquire the credit for the next step it admits.
			a.ds.FinishTask(res.Task)
			a.observeDone(id, res)
			a.mu.Lock()
			a.busy[id]++
			a.mu.Unlock()
			a.results <- *res
		}
		if crashed {
			a.crashes.Add(1)
			a.observeCrash(id)
			a.respawn(id)
			return
		}
	}
}

// failTask disposes of a failed attempt: while the task has attempts
// left it is requeued (pinned inputs stay registered for the retry and
// no Result is emitted yet); otherwise it is dead-lettered — inputs
// are released so producer regions do not leak, and an errored Result
// wrapping ErrDeadLetter is returned.
func (a *Area) failTask(id int, task dataspaces.Task, start time.Time, cause error) *Result {
	task.History = append(task.History, fmt.Sprintf("attempt %d on bucket %d: %v", task.Attempts+1, id, cause))
	if task.Attempts+1 < a.maxAttempts {
		if a.ds.Requeue(task) == nil {
			return nil
		}
		// Service closed mid-failure: fall through to dead-letter.
	}
	a.deadLetters.Add(1)
	a.observeDeadLetter(task.Tenant)
	if a.release != nil {
		for _, in := range task.Inputs {
			a.release(in)
		}
	}
	return &Result{
		Task:       task,
		Bucket:     id,
		Start:      start,
		End:        time.Now(),
		Attempts:   task.Attempts + 1,
		DeadLetter: true,
		Err: &DeadLetterError{
			Tenant:   task.Tenant,
			Analysis: task.Analysis,
			Step:     task.Step,
			TaskID:   task.ID,
			Attempts: task.Attempts + 1,
			History:  append([]string(nil), task.History...),
			Last:     cause,
		},
	}
}

// observeDeadLetter bumps the per-tenant dead-letter counter. The
// registry is idempotent by name+labels, so resolving at dead-letter
// time (a rare event) is cheap and avoids pre-declaring tenants.
func (a *Area) observeDeadLetter(tenant string) {
	pl := a.plane.Load()
	if pl == nil {
		return
	}
	if tenant == "" {
		tenant = "default"
	}
	pl.Registry().Counter("staging_dead_letter_total",
		"tasks that exhausted their attempt budget, by originating tenant",
		obs.Str("tenant", tenant)).Inc()
}

// runTask executes one assigned task. It returns the Result to emit
// (nil when the task was requeued instead) and whether the bucket
// crashed while holding the task.
func (a *Area) runTask(id int, ep *dart.Endpoint, kill <-chan struct{}, task dataspaces.Task) (out *Result, crashed bool) {
	start := time.Now()
	at := a.beginAttempt(id, task)
	defer func() { at.end(out, crashed) }()
	// Checkpoint: crash at assignment. The task never started; it is
	// requeued and the replacement bucket (or a peer) picks it up.
	if killed(kill) {
		return a.failTask(id, task, start, fmt.Errorf("bucket %d crashed at assignment", id)), true
	}
	a.mu.Lock()
	sh, streaming := a.streams[routeKey{task.Tenant, task.Analysis}]
	a.mu.Unlock()
	if streaming {
		res := a.runStreamTask(id, ep, task, sh)
		return &res, false
	}
	res := Result{Task: task, Bucket: id, Start: start, Attempts: task.Attempts + 1}

	// Pull phase: issue all Gets asynchronously, then collect ALL of
	// them — even after a failure — so every successfully pulled pooled
	// buffer is owned here and can be recycled on the error path.
	pullStart := time.Now()
	chans := make([]<-chan dart.GetResult, len(task.Inputs))
	for i, in := range task.Inputs {
		chans[i] = ep.GetAsyncDeadline(in.Handle, task.Deadline)
	}
	data := make([][]byte, len(task.Inputs))
	var pullErr error
	for i, ch := range chans {
		r := <-ch
		if r.Err != nil {
			if pullErr == nil {
				pullErr = fmt.Errorf("staging: pull input %d of task %d: %w", i, task.ID, r.Err)
			}
			continue
		}
		data[i] = r.Data
		res.BytesMoved += int64(len(r.Data))
		res.MoveModeledSum += r.Duration
		if r.Duration > res.MoveModeled {
			res.MoveModeled = r.Duration
		}
	}
	at.child("task.pull", pullStart, time.Now(),
		obs.Int64("bytes", res.BytesMoved), obs.Error(pullErr))
	recycle := func() {
		for i, p := range data {
			if p != nil {
				bufpool.Put(p)
				data[i] = nil
			}
		}
	}
	if pullErr != nil {
		// The handler never saw these buffers, so they are recycled
		// unconditionally (not gated on a.pooled): dart always drew
		// them from the pool.
		recycle()
		return a.failTask(id, task, start, pullErr), false
	}
	res.MoveWall = time.Since(pullStart)

	// Checkpoint: crash after the pull but before releasing the
	// producer regions — the retry can therefore pull them again.
	if killed(kill) {
		recycle()
		return a.failTask(id, task, start, fmt.Errorf("bucket %d crashed after pull", id)), true
	}

	if a.release != nil {
		for _, in := range task.Inputs {
			a.release(in)
		}
	}

	a.mu.Lock()
	h, ok := a.handlers[routeKey{task.Tenant, task.Analysis}]
	a.mu.Unlock()
	if !ok {
		recycle()
		res.Err = fmt.Errorf("staging: no handler registered for analysis %q", task.Analysis)
		res.End = time.Now()
		return &res, false
	}
	computeStart := time.Now()
	hOut, err := safeHandler(func() (any, error) { return h(task, data) })
	if a.pooled {
		for _, p := range data {
			bufpool.Put(p)
		}
	}
	at.child("task.run", computeStart, time.Now(), obs.Error(err))
	res.ComputeWall = time.Since(computeStart)
	res.Output = hOut
	res.Err = err
	res.End = time.Now()
	return &res, false
}

// safeHandler isolates handler panics: a panicking analysis yields an
// errored result instead of killing its bucket (which would starve the
// staging area and hang the drain).
func safeHandler(fn func() (any, error)) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("staging: handler panic: %v", r)
		}
	}()
	return fn()
}

// runStreamTask executes a streaming in-transit stage: the handler
// starts immediately and receives each input the moment its pull
// completes, so computation overlaps the remaining transfers. Because
// movement and compute overlap, ComputeWall here covers the whole
// handler span and MoveWall the pull span; MoveModeled keeps the same
// meaning as in the buffered path.
// Streaming tasks are never requeued: the handler starts consuming
// inputs before the pull set completes and the producer regions are
// released unconditionally afterwards, so a pull failure surfaces as an
// errored Result instead.
func (a *Area) runStreamTask(id int, ep *dart.Endpoint, task dataspaces.Task, sh StreamHandler) Result {
	res := Result{Task: task, Bucket: id, Start: time.Now(), Attempts: task.Attempts + 1}
	inputs := make(chan StreamInput, len(task.Inputs))
	type outcome struct {
		out any
		err error
	}
	done := make(chan outcome, 1)
	computeStart := time.Now()
	go func() {
		out, err := safeHandler(func() (any, error) { return sh(task, inputs) })
		// A panicking streaming handler stops reading; keep the pull
		// loop from blocking by draining whatever remains.
		if err != nil {
			for range inputs {
			}
		}
		done <- outcome{out, err}
	}()

	pullStart := time.Now()
	type pulled struct {
		i int
		r dart.GetResult
	}
	merged := make(chan pulled, len(task.Inputs))
	for i, in := range task.Inputs {
		go func(i int, h dart.MemHandle) {
			r := <-ep.GetAsyncDeadline(h, task.Deadline)
			merged <- pulled{i, r}
		}(i, in.Handle)
	}
	var pullErr error
	var delivered [][]byte
	for range task.Inputs {
		m := <-merged
		if m.r.Err != nil {
			if pullErr == nil {
				pullErr = fmt.Errorf("staging: pull input %d of task %d: %w", m.i, task.ID, m.r.Err)
			}
			continue
		}
		res.BytesMoved += int64(len(m.r.Data))
		res.MoveModeledSum += m.r.Duration
		if m.r.Duration > res.MoveModeled {
			res.MoveModeled = m.r.Duration
		}
		if a.pooled {
			delivered = append(delivered, m.r.Data)
		}
		inputs <- StreamInput{Index: m.i, Rank: task.Inputs[m.i].Rank, Data: m.r.Data}
	}
	close(inputs)
	res.MoveWall = time.Since(pullStart)
	if a.release != nil {
		for _, in := range task.Inputs {
			a.release(in)
		}
	}
	oc := <-done
	// The handler has returned, so under the ownership rule it no
	// longer references any input; recycle the delivered buffers.
	for _, p := range delivered {
		bufpool.Put(p)
	}
	res.ComputeWall = time.Since(computeStart)
	res.Output = oc.out
	res.Err = oc.err
	if pullErr != nil && res.Err == nil {
		res.Err = pullErr
	}
	res.End = time.Now()
	return res
}
