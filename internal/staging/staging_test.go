package staging

import (
	"strings"
	"sync"
	"testing"
	"time"

	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/netsim"
)

// rig wires up a fabric, service and producer endpoint for tests.
type rig struct {
	fabric *dart.Fabric
	ds     *dataspaces.Service
	prod   *dart.Endpoint
}

func newRig(t *testing.T) *rig {
	t.Helper()
	f := dart.NewFabric(netsim.New(netsim.Gemini()))
	ds, err := dataspaces.New(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{fabric: f, ds: ds, prod: f.Register("sim-0")}
}

// publish registers payload with DART and submits a task for it.
func (r *rig) publish(t *testing.T, analysis string, step int, payloads ...[]byte) {
	t.Helper()
	var inputs []dataspaces.Descriptor
	for i, p := range payloads {
		h := r.prod.RegisterMem(p)
		inputs = append(inputs, dataspaces.Descriptor{
			Name: analysis, Version: step, Rank: i, Handle: h,
		})
	}
	if _, err := r.ds.SubmitTask(analysis, step, inputs); err != nil {
		t.Fatal(err)
	}
}

func TestSingleTaskRoundTrip(t *testing.T) {
	r := newRig(t)
	a, err := New(r.fabric, r.ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	a.Handle("concat", func(task dataspaces.Task, data [][]byte) (any, error) {
		var sb strings.Builder
		for _, d := range data {
			sb.Write(d)
		}
		return sb.String(), nil
	})
	a.Start()
	r.publish(t, "concat", 1, []byte("in-"), []byte("transit"))
	res := <-a.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Output.(string) != "in-transit" {
		t.Fatalf("handler output wrong: %v", res.Output)
	}
	if res.BytesMoved != int64(len("in-transit")) {
		t.Fatalf("bytes moved: want %d, got %d", len("in-transit"), res.BytesMoved)
	}
	if res.MoveModeled <= 0 || res.MoveModeledSum < res.MoveModeled {
		t.Fatalf("movement accounting wrong: %+v", res)
	}
	r.ds.Close()
	a.Wait()
}

func TestMissingHandler(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	a.Start()
	r.publish(t, "unknown", 1, []byte("x"))
	res := <-a.Results()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "no handler") {
		t.Fatalf("want missing-handler error, got %v", res.Err)
	}
	r.ds.Close()
	a.Wait()
}

func TestPullErrorSurfaces(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	a.Handle("x", func(task dataspaces.Task, data [][]byte) (any, error) { return nil, nil })
	a.Start()
	// Submit a task whose handle points nowhere.
	r.ds.SubmitTask("x", 1, []dataspaces.Descriptor{{
		Name: "x", Handle: dart.MemHandle{Endpoint: 999},
	}})
	res := <-a.Results()
	if res.Err == nil {
		t.Fatal("broken handle must surface an error")
	}
	r.ds.Close()
	a.Wait()
}

func TestReleaseCallback(t *testing.T) {
	r := newRig(t)
	var mu sync.Mutex
	released := 0
	a, _ := New(r.fabric, r.ds, 1, WithRelease(func(d dataspaces.Descriptor) {
		mu.Lock()
		released++
		mu.Unlock()
		r.prod.Release(d.Handle)
	}))
	a.Handle("x", func(task dataspaces.Task, data [][]byte) (any, error) { return nil, nil })
	a.Start()
	r.publish(t, "x", 1, []byte("a"), []byte("b"))
	<-a.Results()
	mu.Lock()
	if released != 2 {
		t.Fatalf("release callback: want 2, got %d", released)
	}
	mu.Unlock()
	r.ds.Close()
	a.Wait()
}

// TestTemporalMultiplexing is the core pipelining property: with
// in-transit work slower than the submission cadence, successive
// timesteps run on different buckets concurrently, so total wall time
// is far below the serial sum.
func TestTemporalMultiplexing(t *testing.T) {
	r := newRig(t)
	const buckets = 4
	const steps = 8
	const workT = 50 * time.Millisecond
	a, _ := New(r.fabric, r.ds, buckets)
	var mu sync.Mutex
	bucketSeen := map[int]bool{}
	a.Handle("slow", func(task dataspaces.Task, data [][]byte) (any, error) {
		time.Sleep(workT)
		return task.Step, nil
	})
	a.Start()
	start := time.Now()
	for s := 0; s < steps; s++ {
		r.publish(t, "slow", s, []byte("d"))
	}
	for s := 0; s < steps; s++ {
		res := <-a.Results()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		mu.Lock()
		bucketSeen[res.Bucket] = true
		mu.Unlock()
	}
	elapsed := time.Since(start)
	serial := time.Duration(steps) * workT
	if elapsed > serial*3/4 {
		t.Fatalf("no pipelining: %v elapsed for %v serial work on %d buckets", elapsed, serial, buckets)
	}
	if len(bucketSeen) < 2 {
		t.Fatalf("timesteps were not multiplexed across buckets: %v", bucketSeen)
	}
	r.ds.Close()
	a.Wait()
	per := a.CompletedPerBucket()
	var total int64
	for _, c := range per {
		total += c
	}
	if total != steps {
		t.Fatalf("per-bucket counts sum to %d, want %d", total, steps)
	}
}

func TestResultsClosedAfterWait(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 2)
	a.Start()
	r.ds.Close()
	a.Wait()
	if _, ok := <-a.Results(); ok {
		t.Fatal("results channel must be closed after Wait")
	}
}

func TestNewValidation(t *testing.T) {
	r := newRig(t)
	if _, err := New(r.fabric, r.ds, 0); err == nil {
		t.Fatal("zero buckets must error")
	}
}

// TestHandlerPanicIsolated: a panicking analysis yields an errored
// result; the bucket survives and processes subsequent tasks.
func TestHandlerPanicIsolated(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	calls := 0
	a.Handle("flaky", func(task dataspaces.Task, data [][]byte) (any, error) {
		calls++
		if calls == 1 {
			panic("analysis bug")
		}
		return "recovered", nil
	})
	a.Start()
	r.publish(t, "flaky", 1, []byte("x"))
	res := <-a.Results()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panic") {
		t.Fatalf("want panic error, got %v", res.Err)
	}
	r.publish(t, "flaky", 2, []byte("x"))
	res = <-a.Results()
	if res.Err != nil || res.Output != "recovered" {
		t.Fatalf("bucket did not survive the panic: %+v", res)
	}
	r.ds.Close()
	a.Wait()
}

// TestStreamHandlerPanicIsolated: same guarantee for streaming
// handlers, including the pull-drain so nothing leaks.
func TestStreamHandlerPanicIsolated(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	a.HandleStream("boom", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
		<-in
		panic("mid-stream bug")
	})
	a.Start()
	r.publish(t, "boom", 1, []byte("a"), []byte("b"), []byte("c"))
	res := <-a.Results()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "panic") {
		t.Fatalf("want panic error, got %v", res.Err)
	}
	r.ds.Close()
	a.Wait()
}
