package staging

import (
	"testing"
	"time"

	"insitu/internal/dart"
	"insitu/internal/dataspaces"
	"insitu/internal/netsim"
)

// slowRig builds a fabric whose transfers take real wall time
// (TimeScale stretches the modeled Gemini durations), so overlap
// between movement and compute is observable.
func slowRig(t *testing.T) *rig {
	t.Helper()
	cfg := netsim.Gemini()
	// A 1 MB BTE transfer models ~177us; scale so it takes ~18ms; the
	// shared ingress link staggers concurrent arrivals, as a real
	// bucket NIC would.
	cfg.TimeScale = 0.01
	cfg.SharedLink = true
	f := dart.NewFabric(netsim.New(cfg))
	ds, err := dataspaces.New(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{fabric: f, ds: ds, prod: f.Register("sim-0")}
}

func TestStreamHandlerReceivesAllInputs(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	seen := map[int]string{}
	a.HandleStream("s", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
		for i := range in {
			seen[i.Index] = string(i.Data)
		}
		return len(seen), nil
	})
	a.Start()
	r.publish(t, "s", 1, []byte("a"), []byte("b"), []byte("c"))
	res := <-a.Results()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Output.(int) != 3 || seen[0] != "a" || seen[2] != "c" {
		t.Fatalf("streaming handler missed inputs: %v", seen)
	}
	if res.BytesMoved != 3 {
		t.Fatalf("bytes moved: want 3, got %d", res.BytesMoved)
	}
	r.ds.Close()
	a.Wait()
}

// TestStreamingHandlerOverlap is the paper's future-work claim: with
// per-input compute comparable to per-input transfer time, the
// streaming handler hides compute behind movement, so the task
// completes in roughly max(move, compute) + one input, while the
// buffered handler needs move + compute serialized.
func TestStreamingHandlerOverlap(t *testing.T) {
	const inputs = 6
	const perInputWork = 8 * time.Millisecond
	payload := make([]byte, 1<<20) // ~18ms modeled+scaled transfer each

	run := func(streaming bool) time.Duration {
		r := slowRig(t)
		a, _ := New(r.fabric, r.ds, 1)
		work := func() { time.Sleep(perInputWork) }
		if streaming {
			a.HandleStream("x", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
				for range in {
					work()
				}
				return nil, nil
			})
		} else {
			a.Handle("x", func(task dataspaces.Task, data [][]byte) (any, error) {
				for range data {
					work()
				}
				return nil, nil
			})
		}
		a.Start()
		payloads := make([][]byte, inputs)
		for i := range payloads {
			payloads[i] = payload
		}
		r.publish(t, "x", 1, payloads...)
		res := <-a.Results()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		r.ds.Close()
		a.Wait()
		return res.End.Sub(res.Start)
	}

	buffered := run(false)
	streaming := run(true)
	// The streaming task must be meaningfully faster; the precise
	// ratio depends on scheduling, so assert a conservative margin.
	if streaming >= buffered {
		t.Fatalf("streaming (%v) not faster than buffered (%v)", streaming, buffered)
	}
	t.Logf("buffered=%v streaming=%v", buffered, streaming)
}

func TestStreamHandlerPullError(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	a.HandleStream("x", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
		n := 0
		for range in {
			n++
		}
		return n, nil
	})
	a.Start()
	// One good input, one broken handle: the handler still gets the
	// good one and the error is surfaced.
	good := r.prod.RegisterMem([]byte("ok"))
	r.ds.SubmitTask("x", 1, []dataspaces.Descriptor{
		{Name: "x", Rank: 0, Handle: good},
		{Name: "x", Rank: 1, Handle: dart.MemHandle{Endpoint: 999}},
	})
	res := <-a.Results()
	if res.Err == nil {
		t.Fatal("broken handle must surface an error")
	}
	if res.Output.(int) != 1 {
		t.Fatalf("handler should still receive the good input, got %v", res.Output)
	}
	r.ds.Close()
	a.Wait()
}

// TestStreamPrecedence: a streaming handler shadows a buffered one of
// the same name.
func TestStreamPrecedence(t *testing.T) {
	r := newRig(t)
	a, _ := New(r.fabric, r.ds, 1)
	a.Handle("x", func(task dataspaces.Task, data [][]byte) (any, error) { return "buffered", nil })
	a.HandleStream("x", func(task dataspaces.Task, in <-chan StreamInput) (any, error) {
		for range in {
		}
		return "streaming", nil
	})
	a.Start()
	r.publish(t, "x", 1, []byte("d"))
	res := <-a.Results()
	if res.Output != "streaming" {
		t.Fatalf("streaming handler must take precedence, got %v", res.Output)
	}
	r.ds.Close()
	a.Wait()
}
