package stats

import (
	"encoding/binary"
	"fmt"
	"math"

	"insitu/internal/parallel"
)

// Contingency is a single-pass bivariate contingency table over
// fixed-width bins, after the parallel contingency statistics of
// Pébay, Thompson & Bennett (CLUSTER 2010) that the paper cites among
// its statistics algorithms. Tables over the same binning combine by
// cellwise addition, so the learn stage parallelizes exactly like the
// moment accumulators: per-rank tables in-situ, one combine in-transit.
type Contingency struct {
	// Binning of each variable: [Lo, Hi) split into Bins equal cells,
	// with underflow/overflow clamped into the edge cells.
	XLo, XHi float64
	YLo, YHi float64
	XBins    int
	YBins    int

	N      int64
	Counts []int64 // XBins*YBins, x-fastest
}

// NewContingency creates an empty table.
func NewContingency(xlo, xhi float64, xbins int, ylo, yhi float64, ybins int) (*Contingency, error) {
	if xbins < 1 || ybins < 1 {
		return nil, fmt.Errorf("stats: contingency needs >= 1 bin per axis")
	}
	if !(xhi > xlo) || !(yhi > ylo) {
		return nil, fmt.Errorf("stats: contingency needs non-empty ranges")
	}
	return &Contingency{
		XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi,
		XBins: xbins, YBins: ybins,
		Counts: make([]int64, xbins*ybins),
	}, nil
}

func (c *Contingency) bin(v, lo, hi float64, bins int) int {
	i := int(float64(bins) * (v - lo) / (hi - lo))
	if i < 0 {
		return 0
	}
	if i >= bins {
		return bins - 1
	}
	return i
}

// Update folds one paired observation into the table.
func (c *Contingency) Update(x, y float64) {
	bx := c.bin(x, c.XLo, c.XHi, c.XBins)
	by := c.bin(y, c.YLo, c.YHi, c.YBins)
	c.Counts[bx+c.XBins*by]++
	c.N++
}

// UpdateBatch folds paired slices (same length).
func (c *Contingency) UpdateBatch(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("stats: contingency batch length mismatch %d vs %d", len(xs), len(ys))
	}
	for i := range xs {
		c.Update(xs[i], ys[i])
	}
	return nil
}

// UpdateBatchParallel bins paired slices across the shared worker
// pool: each fixed-width chunk fills a private table, and the tables
// merge by cellwise addition in chunk order. Counts are integers, so
// the result is bitwise identical to UpdateBatch at any pool width.
func (c *Contingency) UpdateBatchParallel(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("stats: contingency batch length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) <= updateChunk {
		return c.UpdateBatch(xs, ys)
	}
	nc := (len(xs) + updateChunk - 1) / updateChunk
	parts := make([]*Contingency, nc)
	parallel.ForChunks(len(xs), updateChunk, func(ch, lo, hi int) {
		p := &Contingency{
			XLo: c.XLo, XHi: c.XHi, YLo: c.YLo, YHi: c.YHi,
			XBins: c.XBins, YBins: c.YBins,
			Counts: make([]int64, c.XBins*c.YBins),
		}
		for i := lo; i < hi; i++ {
			p.Update(xs[i], ys[i])
		}
		parts[ch] = p
	})
	for _, p := range parts {
		if err := c.Combine(p); err != nil {
			return err
		}
	}
	return nil
}

// compatible reports whether two tables share a binning.
func (c *Contingency) compatible(o *Contingency) bool {
	return c.XLo == o.XLo && c.XHi == o.XHi && c.YLo == o.YLo && c.YHi == o.YHi &&
		c.XBins == o.XBins && c.YBins == o.YBins
}

// Combine merges another table with identical binning.
func (c *Contingency) Combine(o *Contingency) error {
	if o == nil || o.N == 0 {
		return nil
	}
	if !c.compatible(o) {
		return fmt.Errorf("stats: contingency binnings differ")
	}
	for i, v := range o.Counts {
		c.Counts[i] += v
	}
	c.N += o.N
	return nil
}

// ContingencyDerived holds the derived information-theoretic and
// test quantities.
type ContingencyDerived struct {
	N          int64
	HX, HY     float64 // marginal entropies (nats)
	HXY        float64 // joint entropy
	MutualInfo float64 // I(X;Y) = HX + HY - HXY, clamped at 0
	ChiSquare  float64 // Pearson chi-squared statistic for independence
	DoF        int     // (XBins-1)*(YBins-1)
	CramersV   float64 // effect size in [0,1]
}

// Derive computes entropies, mutual information and the chi-squared
// independence statistic — the derive stage for contingency models.
func (c *Contingency) Derive() ContingencyDerived {
	d := ContingencyDerived{N: c.N, DoF: (c.XBins - 1) * (c.YBins - 1)}
	if c.N == 0 {
		return d
	}
	n := float64(c.N)
	mx := make([]float64, c.XBins)
	my := make([]float64, c.YBins)
	for by := 0; by < c.YBins; by++ {
		for bx := 0; bx < c.XBins; bx++ {
			v := float64(c.Counts[bx+c.XBins*by])
			mx[bx] += v
			my[by] += v
			if v > 0 {
				p := v / n
				d.HXY -= p * math.Log(p)
			}
		}
	}
	for _, v := range mx {
		if v > 0 {
			p := v / n
			d.HX -= p * math.Log(p)
		}
	}
	for _, v := range my {
		if v > 0 {
			p := v / n
			d.HY -= p * math.Log(p)
		}
	}
	d.MutualInfo = d.HX + d.HY - d.HXY
	if d.MutualInfo < 0 {
		d.MutualInfo = 0 // floating-point guard
	}
	// Pearson chi-squared over cells with nonzero expectation.
	for by := 0; by < c.YBins; by++ {
		for bx := 0; bx < c.XBins; bx++ {
			e := mx[bx] * my[by] / n
			if e <= 0 {
				continue
			}
			o := float64(c.Counts[bx+c.XBins*by])
			d.ChiSquare += (o - e) * (o - e) / e
		}
	}
	k := min(c.XBins, c.YBins)
	if k > 1 && n > 0 {
		d.CramersV = math.Sqrt(d.ChiSquare / (n * float64(k-1)))
	}
	return d
}

// MarshalSize returns the exact encoded size of the table.
func (c *Contingency) MarshalSize() int { return 7*8 + 8*len(c.Counts) }

// AppendMarshal appends the table's encoding to dst and returns the
// extended slice; with a preallocated dst the pack is allocation-free.
func (c *Contingency) AppendMarshal(dst []byte) []byte {
	off := len(dst)
	need := c.MarshalSize()
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	for _, f := range []float64{c.XLo, c.XHi, c.YLo, c.YHi} {
		binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(f))
		off += 8
	}
	for _, v := range []uint64{uint64(c.XBins), uint64(c.YBins), uint64(c.N)} {
		binary.LittleEndian.PutUint64(dst[off:], v)
		off += 8
	}
	for _, v := range c.Counts {
		binary.LittleEndian.PutUint64(dst[off:], uint64(v))
		off += 8
	}
	return dst
}

// Marshal serializes the table.
func (c *Contingency) Marshal() []byte {
	return c.AppendMarshal(make([]byte, 0, c.MarshalSize()))
}

// UnmarshalContingency reverses Marshal.
func UnmarshalContingency(p []byte) (*Contingency, error) {
	const hdr = 7 * 8
	if len(p) < hdr {
		return nil, fmt.Errorf("stats: contingency payload too short")
	}
	f := func(off int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
	}
	c := &Contingency{
		XLo: f(0), XHi: f(8), YLo: f(16), YHi: f(24),
		XBins: int(binary.LittleEndian.Uint64(p[32:])),
		YBins: int(binary.LittleEndian.Uint64(p[40:])),
		N:     int64(binary.LittleEndian.Uint64(p[48:])),
	}
	if c.XBins < 1 || c.YBins < 1 || c.XBins*c.YBins > (len(p)-hdr)/8 {
		return nil, fmt.Errorf("stats: contingency payload truncated or corrupt")
	}
	c.Counts = make([]int64, c.XBins*c.YBins)
	for i := range c.Counts {
		c.Counts[i] = int64(binary.LittleEndian.Uint64(p[hdr+8*i:]))
	}
	return c, nil
}
