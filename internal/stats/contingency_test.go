package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestContingencyValidation(t *testing.T) {
	if _, err := NewContingency(0, 1, 0, 0, 1, 4); err == nil {
		t.Fatal("zero bins must error")
	}
	if _, err := NewContingency(1, 1, 4, 0, 1, 4); err == nil {
		t.Fatal("empty range must error")
	}
	c, _ := NewContingency(0, 1, 4, 0, 1, 4)
	if err := c.UpdateBatch([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestContingencyBinningAndClamp(t *testing.T) {
	c, _ := NewContingency(0, 4, 4, 0, 2, 2)
	c.Update(0.5, 0.5) // bin (0,0)
	c.Update(3.9, 1.9) // bin (3,1)
	c.Update(-5, -5)   // clamped to (0,0)
	c.Update(99, 99)   // clamped to (3,1)
	if c.N != 4 {
		t.Fatalf("N: want 4, got %d", c.N)
	}
	if c.Counts[0] != 2 || c.Counts[3+4*1] != 2 {
		t.Fatalf("binning wrong: %v", c.Counts)
	}
}

func TestContingencyCombineMatchesWhole(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		whole, _ := NewContingency(-3, 3, 8, -3, 3, 6)
		a, _ := NewContingency(-3, 3, 8, -3, 3, 6)
		b, _ := NewContingency(-3, 3, 8, -3, 3, 6)
		n := 50 + rng.Intn(200)
		split := rng.Intn(n)
		for i := 0; i < n; i++ {
			x, y := rng.NormFloat64(), rng.NormFloat64()
			whole.Update(x, y)
			if i < split {
				a.Update(x, y)
			} else {
				b.Update(x, y)
			}
		}
		if err := a.Combine(b); err != nil {
			return false
		}
		if a.N != whole.N {
			return false
		}
		for i := range a.Counts {
			if a.Counts[i] != whole.Counts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestContingencyCombineMismatch(t *testing.T) {
	a, _ := NewContingency(0, 1, 4, 0, 1, 4)
	b, _ := NewContingency(0, 2, 4, 0, 1, 4)
	b.Update(1, 0.5)
	if err := a.Combine(b); err == nil {
		t.Fatal("mismatched binning must error")
	}
	if err := a.Combine(nil); err != nil {
		t.Fatal("nil combine must be a no-op")
	}
}

func TestContingencyIndependentVars(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, _ := NewContingency(0, 1, 8, 0, 1, 8)
	for i := 0; i < 100000; i++ {
		c.Update(rng.Float64(), rng.Float64())
	}
	d := c.Derive()
	if d.MutualInfo > 0.01 {
		t.Fatalf("independent uniforms should have MI ~ 0, got %g", d.MutualInfo)
	}
	// Uniform marginals over 8 bins: H = ln 8.
	if math.Abs(d.HX-math.Log(8)) > 0.01 || math.Abs(d.HY-math.Log(8)) > 0.01 {
		t.Fatalf("marginal entropies off: %g %g (want %g)", d.HX, d.HY, math.Log(8))
	}
	if d.CramersV > 0.05 {
		t.Fatalf("independent vars should have tiny Cramer's V, got %g", d.CramersV)
	}
}

func TestContingencyIdenticalVars(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c, _ := NewContingency(0, 1, 8, 0, 1, 8)
	for i := 0; i < 100000; i++ {
		x := rng.Float64()
		c.Update(x, x)
	}
	d := c.Derive()
	// For Y == X, I(X;Y) = H(X) and Cramer's V ~ 1.
	if math.Abs(d.MutualInfo-d.HX) > 0.01 {
		t.Fatalf("identical vars should have MI == HX: %g vs %g", d.MutualInfo, d.HX)
	}
	if d.CramersV < 0.95 {
		t.Fatalf("identical vars should have Cramer's V ~ 1, got %g", d.CramersV)
	}
	// Chi-squared enormous relative to dof.
	if d.ChiSquare < 10*float64(d.DoF) {
		t.Fatalf("dependence not detected: chi2=%g dof=%d", d.ChiSquare, d.DoF)
	}
}

func TestContingencyCorrelatedVars(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c, _ := NewContingency(-4, 4, 10, -4, 4, 10)
	for i := 0; i < 50000; i++ {
		x := rng.NormFloat64()
		y := 0.9*x + 0.4*rng.NormFloat64()
		c.Update(x, y)
	}
	d := c.Derive()
	if d.MutualInfo < 0.3 {
		t.Fatalf("strongly correlated vars should carry information: MI=%g", d.MutualInfo)
	}
}

func TestContingencyDeriveEmpty(t *testing.T) {
	c, _ := NewContingency(0, 1, 4, 0, 1, 4)
	d := c.Derive()
	if d.MutualInfo != 0 || d.HX != 0 || d.ChiSquare != 0 {
		t.Fatalf("empty table must derive zeros: %+v", d)
	}
}

func TestContingencyMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c, _ := NewContingency(-1, 1, 5, 0, 2, 3)
	for i := 0; i < 100; i++ {
		c.Update(rng.NormFloat64(), rng.Float64()*2)
	}
	got, err := UnmarshalContingency(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.N != c.N || got.XBins != c.XBins || got.YLo != c.YLo {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range c.Counts {
		if got.Counts[i] != c.Counts[i] {
			t.Fatal("counts mismatch")
		}
	}
	if _, err := UnmarshalContingency(nil); err == nil {
		t.Fatal("empty payload must error")
	}
	if _, err := UnmarshalContingency(c.Marshal()[:40]); err == nil {
		t.Fatal("truncated payload must error")
	}
}
