package stats

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Covariance is a single-pass bivariate accumulator: means and centered
// second-order aggregates for a pair of variables, combinable in
// parallel like Moments. It is the building block for the
// auto-correlative statistics the paper lists as future work, which
// this library implements as an extension (see AutoCorrelator).
type Covariance struct {
	N     int64
	MeanX float64
	MeanY float64
	M2X   float64 // sum (x - meanX)^2
	M2Y   float64 // sum (y - meanY)^2
	CXY   float64 // sum (x - meanX)(y - meanY)
}

// Update folds one paired observation into the accumulator.
func (c *Covariance) Update(x, y float64) {
	c.N++
	n := float64(c.N)
	dx := x - c.MeanX
	dy := y - c.MeanY
	c.MeanX += dx / n
	c.MeanY += dy / n
	// Note the asymmetric update: dy uses the *old* meanY, the second
	// factor uses the *new* meanX, which is what keeps this one-pass
	// form exact.
	c.CXY += dx * (y - c.MeanY)
	c.M2X += dx * (x - c.MeanX)
	c.M2Y += dy * (y - c.MeanY)
}

// Combine merges another partial accumulator using the pairwise update
// formulas.
func (c *Covariance) Combine(o *Covariance) {
	if o == nil || o.N == 0 {
		return
	}
	if c.N == 0 {
		*c = *o
		return
	}
	na, nb := float64(c.N), float64(o.N)
	n := na + nb
	dx := o.MeanX - c.MeanX
	dy := o.MeanY - c.MeanY
	c.CXY += o.CXY + dx*dy*na*nb/n
	c.M2X += o.M2X + dx*dx*na*nb/n
	c.M2Y += o.M2Y + dy*dy*na*nb/n
	c.MeanX += dx * nb / n
	c.MeanY += dy * nb / n
	c.N += o.N
}

// Cov returns the unbiased sample covariance.
func (c *Covariance) Cov() float64 {
	if c.N < 2 {
		return 0
	}
	return c.CXY / float64(c.N-1)
}

// Corr returns the Pearson correlation coefficient, 0 when either
// variance vanishes.
func (c *Covariance) Corr() float64 {
	if c.M2X <= 0 || c.M2Y <= 0 {
		return 0
	}
	return c.CXY / math.Sqrt(c.M2X*c.M2Y)
}

// covWireSize is the encoded size of one Covariance record.
const covWireSize = 6 * 8

// Marshal serializes the accumulator.
func (c *Covariance) Marshal() []byte {
	out := make([]byte, covWireSize)
	binary.LittleEndian.PutUint64(out, uint64(c.N))
	off := 8
	for _, v := range []float64{c.MeanX, c.MeanY, c.M2X, c.M2Y, c.CXY} {
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(v))
		off += 8
	}
	return out
}

// UnmarshalCovariance reconstructs an accumulator.
func UnmarshalCovariance(p []byte) (*Covariance, error) {
	if len(p) < covWireSize {
		return nil, fmt.Errorf("stats: covariance payload too short (%d bytes)", len(p))
	}
	c := &Covariance{}
	c.N = int64(binary.LittleEndian.Uint64(p[:8]))
	c.MeanX = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	c.MeanY = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
	c.M2X = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
	c.M2Y = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
	c.CXY = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
	return c, nil
}

// AutoCorrelator computes temporal autocorrelation of a per-point
// variable at a set of lags, single-pass over timesteps: the in-situ
// stage pairs the current snapshot with buffered earlier snapshots and
// updates one Covariance per lag; partial accumulators combine
// in-transit exactly like the descriptive-statistics models. This is
// the "hybrid in-situ/in-transit auto-correlative statistical
// technique" sketched in the paper's future work.
type AutoCorrelator struct {
	Lags []int
	accs []*Covariance
	// ring buffers the last max(Lags) snapshots of the local field.
	ring [][]float64
	head int
	seen int
}

// NewAutoCorrelator creates an accumulator for the given strictly
// positive lags (in timesteps).
func NewAutoCorrelator(lags ...int) (*AutoCorrelator, error) {
	if len(lags) == 0 {
		return nil, fmt.Errorf("stats: autocorrelator needs at least one lag")
	}
	maxLag := 0
	for _, l := range lags {
		if l < 1 {
			return nil, fmt.Errorf("stats: lag %d must be >= 1", l)
		}
		if l > maxLag {
			maxLag = l
		}
	}
	a := &AutoCorrelator{Lags: append([]int{}, lags...)}
	a.accs = make([]*Covariance, len(lags))
	for i := range a.accs {
		a.accs[i] = &Covariance{}
	}
	a.ring = make([][]float64, maxLag)
	return a, nil
}

// Push folds the next timestep's local snapshot into the per-lag
// accumulators. Snapshots must all have the same length.
func (a *AutoCorrelator) Push(snapshot []float64) {
	for li, lag := range a.Lags {
		if a.seen >= lag {
			prev := a.ring[(a.head-lag+len(a.ring)+len(a.ring))%len(a.ring)]
			acc := a.accs[li]
			for i, x := range snapshot {
				acc.Update(x, prev[i])
			}
		}
	}
	// Store a copy in the ring.
	cp := make([]float64, len(snapshot))
	copy(cp, snapshot)
	a.ring[a.head] = cp
	a.head = (a.head + 1) % len(a.ring)
	a.seen++
}

// Acc returns the accumulator for the i-th registered lag.
func (a *AutoCorrelator) Acc(i int) *Covariance { return a.accs[i] }

// Combine merges another correlator with identical lags.
func (a *AutoCorrelator) Combine(o *AutoCorrelator) error {
	if len(a.Lags) != len(o.Lags) {
		return fmt.Errorf("stats: lag sets differ: %v vs %v", a.Lags, o.Lags)
	}
	for i, l := range a.Lags {
		if o.Lags[i] != l {
			return fmt.Errorf("stats: lag sets differ: %v vs %v", a.Lags, o.Lags)
		}
		a.accs[i].Combine(o.accs[i])
	}
	return nil
}

// Corr returns the autocorrelation estimates per registered lag.
func (a *AutoCorrelator) Corr() []float64 {
	out := make([]float64, len(a.accs))
	for i, acc := range a.accs {
		out[i] = acc.Corr()
	}
	return out
}

// Marshal serializes the per-lag accumulators (ring buffers are local
// state and are not shipped).
func (a *AutoCorrelator) Marshal() []byte {
	var buf bytes.Buffer
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(a.Lags)))
	buf.Write(b4[:])
	for i, l := range a.Lags {
		binary.LittleEndian.PutUint32(b4[:], uint32(l))
		buf.Write(b4[:])
		buf.Write(a.accs[i].Marshal())
	}
	return buf.Bytes()
}

// UnmarshalAutoCorrelator reconstructs the shipped accumulators.
func UnmarshalAutoCorrelator(p []byte) (*AutoCorrelator, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("stats: autocorrelator payload too short")
	}
	n := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	a := &AutoCorrelator{}
	for i := 0; i < n; i++ {
		if len(p) < 4+covWireSize {
			return nil, fmt.Errorf("stats: truncated autocorrelator record %d", i)
		}
		lag := int(binary.LittleEndian.Uint32(p[:4]))
		p = p[4:]
		acc, err := UnmarshalCovariance(p[:covWireSize])
		if err != nil {
			return nil, err
		}
		p = p[covWireSize:]
		a.Lags = append(a.Lags, lag)
		a.accs = append(a.accs, acc)
	}
	return a, nil
}
