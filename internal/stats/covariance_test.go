package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveCov(xs, ys []float64) (cov, corr float64) {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var cxy, m2x, m2y float64
	for i := range xs {
		cxy += (xs[i] - mx) * (ys[i] - my)
		m2x += (xs[i] - mx) * (xs[i] - mx)
		m2y += (ys[i] - my) * (ys[i] - my)
	}
	return cxy / (n - 1), cxy / math.Sqrt(m2x*m2y)
}

func TestCovarianceMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 2000
	xs, ys := make([]float64, n), make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = 0.7*xs[i] + 0.3*rng.NormFloat64()
	}
	c := &Covariance{}
	for i := range xs {
		c.Update(xs[i], ys[i])
	}
	cov, corr := naiveCov(xs, ys)
	if !approxEq(c.Cov(), cov, 1e-10) || !approxEq(c.Corr(), corr, 1e-10) {
		t.Fatalf("one-pass covariance diverged: %g/%g vs %g/%g", c.Cov(), c.Corr(), cov, corr)
	}
	if c.Corr() < 0.85 {
		t.Fatalf("strongly correlated data should show corr > 0.85, got %g", c.Corr())
	}
}

func TestCovarianceCombineProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		split := 1 + rng.Intn(n-1)
		whole, a, b := &Covariance{}, &Covariance{}, &Covariance{}
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()
			y := x*0.5 + rng.NormFloat64()
			whole.Update(x, y)
			if i < split {
				a.Update(x, y)
			} else {
				b.Update(x, y)
			}
		}
		a.Combine(b)
		return a.N == whole.N &&
			approxEq(a.CXY, whole.CXY, 1e-8) &&
			approxEq(a.M2X, whole.M2X, 1e-8) &&
			approxEq(a.M2Y, whole.M2Y, 1e-8) &&
			approxEq(a.MeanX, whole.MeanX, 1e-10) &&
			approxEq(a.MeanY, whole.MeanY, 1e-10)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceEdgeCases(t *testing.T) {
	c := &Covariance{}
	if c.Cov() != 0 || c.Corr() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	c.Update(1, 1)
	if c.Cov() != 0 {
		t.Fatal("single observation has no covariance")
	}
	c.Combine(nil)
	c.Combine(&Covariance{})
	if c.N != 1 {
		t.Fatal("empty combines must not change N")
	}
	d := &Covariance{}
	d.Combine(c)
	if d.N != 1 || d.MeanX != 1 {
		t.Fatalf("combine into empty failed: %+v", d)
	}
}

func TestCovarianceMarshalRoundTrip(t *testing.T) {
	c := &Covariance{}
	for i := 0; i < 10; i++ {
		c.Update(float64(i), float64(i*i))
	}
	got, err := UnmarshalCovariance(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *c {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, c)
	}
	if _, err := UnmarshalCovariance([]byte{1}); err == nil {
		t.Fatal("short payload must error")
	}
}

func TestAutoCorrelatorAR1(t *testing.T) {
	// AR(1) process x_t = phi x_{t-1} + noise has autocorrelation
	// phi^lag.
	ac, err := NewAutoCorrelator(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	const phi = 0.8
	const width = 64
	state := make([]float64, width)
	for step := 0; step < 4000; step++ {
		for i := range state {
			state[i] = phi*state[i] + rng.NormFloat64()
		}
		snap := make([]float64, width)
		copy(snap, state)
		ac.Push(snap)
	}
	corr := ac.Corr()
	for li, lag := range ac.Lags {
		want := math.Pow(phi, float64(lag))
		if math.Abs(corr[li]-want) > 0.05 {
			t.Fatalf("lag %d: want autocorr ~%.3f, got %.3f", lag, want, corr[li])
		}
	}
}

func TestAutoCorrelatorCombineAndMarshal(t *testing.T) {
	mk := func(seed int64) *AutoCorrelator {
		ac, _ := NewAutoCorrelator(1, 3)
		rng := rand.New(rand.NewSource(seed))
		x := 0.0
		for step := 0; step < 200; step++ {
			x = 0.9*x + rng.NormFloat64()
			ac.Push([]float64{x})
		}
		return ac
	}
	a, b := mk(1), mk(2)
	if err := a.Combine(b); err != nil {
		t.Fatal(err)
	}
	if a.Acc(0).N != 199*2 {
		t.Fatalf("combined count wrong: %d", a.Acc(0).N)
	}
	got, err := UnmarshalAutoCorrelator(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Lags) != 2 || got.Lags[1] != 3 || *got.Acc(1) != *a.Acc(1) {
		t.Fatalf("round trip mismatch")
	}
	bad, _ := NewAutoCorrelator(2)
	if err := a.Combine(bad); err == nil {
		t.Fatal("mismatched lags must error")
	}
}

func TestAutoCorrelatorValidation(t *testing.T) {
	if _, err := NewAutoCorrelator(); err == nil {
		t.Fatal("no lags must error")
	}
	if _, err := NewAutoCorrelator(0); err == nil {
		t.Fatal("lag 0 must error")
	}
	if _, err := UnmarshalAutoCorrelator(nil); err == nil {
		t.Fatal("empty payload must error")
	}
}
