package stats_test

import (
	"fmt"

	"insitu/internal/stats"
)

// The single-pass accumulator and the pairwise combine: two partial
// models over halves of the data merge into exactly the model of the
// whole.
func ExampleMoments_Combine() {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	a := stats.NewMoments()
	a.UpdateBatch(xs[:4])
	b := stats.NewMoments()
	b.UpdateBatch(xs[4:])
	a.Combine(b)
	d := stats.Derive(a)
	fmt.Printf("n=%d mean=%.1f stddev=%.3f\n", d.N, d.Mean, d.StdDev)
	// Output:
	// n=8 mean=5.0 stddev=2.138
}

// The four-stage pattern: learn builds the minimal model, derive the
// detailed one, assess standardizes observations, test computes a
// hypothesis-test statistic.
func ExampleDerive() {
	m := stats.NewMoments()
	for i := 1; i <= 5; i++ {
		m.Update(float64(i))
	}
	d := stats.Derive(m)
	as := stats.Assess([]float64{3}, d, 2)
	fmt.Printf("mean=%.0f variance=%.1f deviation(3)=%.0f\n", d.Mean, d.Variance, as[0].Deviation)
	// Output:
	// mean=3 variance=2.5 deviation(3)=0
}

// Contingency tables combine cellwise; identical variables carry
// maximal mutual information.
func ExampleContingency() {
	c, _ := stats.NewContingency(0, 4, 4, 0, 4, 4)
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 0.5, 1.5} {
		c.Update(v, v)
	}
	d := c.Derive()
	fmt.Printf("n=%d MI==HX: %v\n", d.N, d.MutualInfo == d.HX)
	// Output:
	// n=6 MI==HX: true
}
