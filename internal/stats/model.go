package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

// Model is a multi-variable primary model: one Moments accumulator per
// simulation variable (the paper's runs track 14 variables).
type Model struct {
	vars  map[string]*Moments
	order []string // registration order, for deterministic iteration
}

// NewModel returns an empty multi-variable model.
func NewModel() *Model {
	return &Model{vars: make(map[string]*Moments)}
}

// Var returns the accumulator for name, creating it on first use.
func (mo *Model) Var(name string) *Moments {
	m, ok := mo.vars[name]
	if !ok {
		m = NewMoments()
		mo.vars[name] = m
		mo.order = append(mo.order, name)
	}
	return m
}

// Names returns the variable names in deterministic (sorted) order.
func (mo *Model) Names() []string {
	out := append([]string{}, mo.order...)
	sort.Strings(out)
	return out
}

// LearnField folds every point of a field into the variable named by
// the field.
func (mo *Model) LearnField(f *grid.Field) {
	mo.Var(f.Name).UpdateBatch(f.Data)
}

// LearnFieldParallel folds every point of a field into the variable
// named by the field using the chunk-parallel moment kernel. The
// result is width-independent (fixed chunk partition, ordered
// Combine) and matches LearnField bitwise for fields smaller than one
// chunk; larger fields agree to floating-point reassociation.
func (mo *Model) LearnFieldParallel(f *grid.Field) {
	mo.Var(f.Name).UpdateBatchParallel(f.Data)
}

// LearnFields folds a set of fields.
func (mo *Model) LearnFields(fs []*grid.Field) {
	for _, f := range fs {
		mo.LearnField(f)
	}
}

// Combine merges another multi-variable model into mo.
func (mo *Model) Combine(o *Model) {
	for _, name := range o.Names() {
		mo.Var(name).Combine(o.vars[name])
	}
}

// DeriveAll computes the detailed model per variable.
func (mo *Model) DeriveAll() map[string]Derived {
	out := make(map[string]Derived, len(mo.vars))
	for name, m := range mo.vars {
		out[name] = Derive(m)
	}
	return out
}

// momentsWireSize is the fixed encoding size of one Moments record.
const momentsWireSize = 7 * 8

// MarshalSize returns the exact encoded size of the model.
func (mo *Model) MarshalSize() int {
	n := 4
	for _, name := range mo.order {
		n += 4 + len(name) + momentsWireSize
	}
	return n
}

// AppendMarshal appends the model's encoding to dst and returns the
// extended slice. Encoding writes Float64bits words directly into the
// destination; with a preallocated dst the pack is allocation-free
// apart from the sorted name list.
func (mo *Model) AppendMarshal(dst []byte) []byte {
	names := mo.Names()
	off := len(dst)
	need := mo.MarshalSize()
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(names)))
	off += 4
	for _, name := range names {
		binary.LittleEndian.PutUint32(dst[off:], uint32(len(name)))
		off += 4
		copy(dst[off:], name)
		off += len(name)
		m := mo.vars[name]
		binary.LittleEndian.PutUint64(dst[off:], uint64(m.N))
		off += 8
		for _, v := range []float64{m.Min, m.Max, m.Mean, m.M2, m.M3, m.M4} {
			binary.LittleEndian.PutUint64(dst[off:], math.Float64bits(v))
			off += 8
		}
	}
	return dst
}

// Marshal serializes the model into the compact binary form shipped to
// the in-transit derive stage. The encoded size for 14 variables is a
// few hundred bytes per rank — the data reduction that makes the
// hybrid statistics variant nearly free to move.
func (mo *Model) Marshal() []byte {
	return mo.AppendMarshal(make([]byte, 0, mo.MarshalSize()))
}

// UnmarshalModel reconstructs a model from Marshal's output.
func UnmarshalModel(p []byte) (*Model, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("stats: model payload too short")
	}
	nvars := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	mo := NewModel()
	for v := 0; v < nvars; v++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("stats: truncated model at variable %d", v)
		}
		nameLen := int(binary.LittleEndian.Uint32(p[:4]))
		p = p[4:]
		if len(p) < nameLen+momentsWireSize {
			return nil, fmt.Errorf("stats: truncated model record %d", v)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		m := mo.Var(name)
		m.N = int64(binary.LittleEndian.Uint64(p[:8]))
		m.Min = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		m.Max = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
		m.Mean = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
		m.M2 = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
		m.M3 = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
		m.M4 = math.Float64frombits(binary.LittleEndian.Uint64(p[48:]))
		p = p[momentsWireSize:]
	}
	return mo, nil
}

// ParallelLearn performs the fully in-situ variant's learn stage: an
// all-to-all-consistent global model obtained by an allreduce over
// per-rank partial models. Every rank returns the same global model,
// the paper's "all-to-all communication ... to guarantee a consistent
// model ... across all processors".
func ParallelLearn(r *comm.Rank, local *Model) *Model {
	res := r.Allreduce(local, func(a, b any) any {
		merged := NewModel()
		merged.Combine(a.(*Model))
		merged.Combine(b.(*Model))
		return merged
	})
	return res.(*Model)
}

// AggregateSerial performs the hybrid variant's in-transit derive-side
// aggregation: the single serial staging process combines all partial
// models it pulled from the in-situ ranks.
func AggregateSerial(partials [][]byte) (*Model, error) {
	global := NewModel()
	for i, p := range partials {
		mo, err := UnmarshalModel(p)
		if err != nil {
			return nil, fmt.Errorf("stats: partial model %d: %w", i, err)
		}
		global.Combine(mo)
	}
	return global, nil
}
