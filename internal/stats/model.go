package stats

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

// Model is a multi-variable primary model: one Moments accumulator per
// simulation variable (the paper's runs track 14 variables).
type Model struct {
	vars  map[string]*Moments
	order []string // registration order, for deterministic iteration
}

// NewModel returns an empty multi-variable model.
func NewModel() *Model {
	return &Model{vars: make(map[string]*Moments)}
}

// Var returns the accumulator for name, creating it on first use.
func (mo *Model) Var(name string) *Moments {
	m, ok := mo.vars[name]
	if !ok {
		m = NewMoments()
		mo.vars[name] = m
		mo.order = append(mo.order, name)
	}
	return m
}

// Names returns the variable names in deterministic (sorted) order.
func (mo *Model) Names() []string {
	out := append([]string{}, mo.order...)
	sort.Strings(out)
	return out
}

// LearnField folds every point of a field into the variable named by
// the field.
func (mo *Model) LearnField(f *grid.Field) {
	mo.Var(f.Name).UpdateBatch(f.Data)
}

// LearnFields folds a set of fields.
func (mo *Model) LearnFields(fs []*grid.Field) {
	for _, f := range fs {
		mo.LearnField(f)
	}
}

// Combine merges another multi-variable model into mo.
func (mo *Model) Combine(o *Model) {
	for _, name := range o.Names() {
		mo.Var(name).Combine(o.vars[name])
	}
}

// DeriveAll computes the detailed model per variable.
func (mo *Model) DeriveAll() map[string]Derived {
	out := make(map[string]Derived, len(mo.vars))
	for name, m := range mo.vars {
		out[name] = Derive(m)
	}
	return out
}

// momentsWireSize is the fixed encoding size of one Moments record.
const momentsWireSize = 7 * 8

func putF(buf *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	buf.Write(b[:])
}

// Marshal serializes the model into the compact binary form shipped to
// the in-transit derive stage. The encoded size for 14 variables is a
// few hundred bytes per rank — the data reduction that makes the
// hybrid statistics variant nearly free to move.
func (mo *Model) Marshal() []byte {
	var buf bytes.Buffer
	names := mo.Names()
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(len(names)))
	buf.Write(b4[:])
	for _, name := range names {
		binary.LittleEndian.PutUint32(b4[:], uint32(len(name)))
		buf.Write(b4[:])
		buf.WriteString(name)
		m := mo.vars[name]
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], uint64(m.N))
		buf.Write(b8[:])
		putF(&buf, m.Min)
		putF(&buf, m.Max)
		putF(&buf, m.Mean)
		putF(&buf, m.M2)
		putF(&buf, m.M3)
		putF(&buf, m.M4)
	}
	return buf.Bytes()
}

// UnmarshalModel reconstructs a model from Marshal's output.
func UnmarshalModel(p []byte) (*Model, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("stats: model payload too short")
	}
	nvars := int(binary.LittleEndian.Uint32(p[:4]))
	p = p[4:]
	mo := NewModel()
	for v := 0; v < nvars; v++ {
		if len(p) < 4 {
			return nil, fmt.Errorf("stats: truncated model at variable %d", v)
		}
		nameLen := int(binary.LittleEndian.Uint32(p[:4]))
		p = p[4:]
		if len(p) < nameLen+momentsWireSize {
			return nil, fmt.Errorf("stats: truncated model record %d", v)
		}
		name := string(p[:nameLen])
		p = p[nameLen:]
		m := mo.Var(name)
		m.N = int64(binary.LittleEndian.Uint64(p[:8]))
		m.Min = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		m.Max = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
		m.Mean = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
		m.M2 = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
		m.M3 = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
		m.M4 = math.Float64frombits(binary.LittleEndian.Uint64(p[48:]))
		p = p[momentsWireSize:]
	}
	return mo, nil
}

// ParallelLearn performs the fully in-situ variant's learn stage: an
// all-to-all-consistent global model obtained by an allreduce over
// per-rank partial models. Every rank returns the same global model,
// the paper's "all-to-all communication ... to guarantee a consistent
// model ... across all processors".
func ParallelLearn(r *comm.Rank, local *Model) *Model {
	res := r.Allreduce(local, func(a, b any) any {
		merged := NewModel()
		merged.Combine(a.(*Model))
		merged.Combine(b.(*Model))
		return merged
	})
	return res.(*Model)
}

// AggregateSerial performs the hybrid variant's in-transit derive-side
// aggregation: the single serial staging process combines all partial
// models it pulled from the in-situ ranks.
func AggregateSerial(partials [][]byte) (*Model, error) {
	global := NewModel()
	for i, p := range partials {
		mo, err := UnmarshalModel(p)
		if err != nil {
			return nil, fmt.Errorf("stats: partial model %d: %w", i, err)
		}
		global.Combine(mo)
	}
	return global, nil
}
