package stats

import (
	"math/rand"
	"testing"

	"insitu/internal/comm"
	"insitu/internal/grid"
)

func fieldOf(name string, b grid.Box, fn func(i, j, k int) float64) *grid.Field {
	f := grid.NewField(name, b)
	for idx := range f.Data {
		i, j, k := b.Point(idx)
		f.Data[idx] = fn(i, j, k)
	}
	return f
}

func TestModelLearnFields(t *testing.T) {
	b := grid.NewBox(4, 4, 4)
	mo := NewModel()
	mo.LearnFields([]*grid.Field{
		fieldOf("T", b, func(i, j, k int) float64 { return float64(i) }),
		fieldOf("P", b, func(i, j, k int) float64 { return 2 }),
	})
	if got := mo.Var("T").N; got != 64 {
		t.Fatalf("T count: want 64, got %d", got)
	}
	d := mo.DeriveAll()
	if d["P"].Variance != 0 || d["P"].Mean != 2 {
		t.Fatalf("P stats wrong: %+v", d["P"])
	}
	if d["T"].Mean != 1.5 {
		t.Fatalf("T mean: want 1.5, got %g", d["T"].Mean)
	}
	names := mo.Names()
	if len(names) != 2 || names[0] != "P" || names[1] != "T" {
		t.Fatalf("names wrong: %v", names)
	}
}

func TestModelMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mo := NewModel()
	for _, name := range []string{"T", "Y_H2", "Y_OH"} {
		m := mo.Var(name)
		for i := 0; i < 100; i++ {
			m.Update(rng.NormFloat64())
		}
	}
	got, err := UnmarshalModel(mo.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range mo.Names() {
		a, b := *mo.Var(name), *got.Var(name)
		if a != b {
			t.Fatalf("variable %s: %+v vs %+v", name, a, b)
		}
	}
	if _, err := UnmarshalModel(nil); err == nil {
		t.Fatal("empty payload must error")
	}
	if _, err := UnmarshalModel(mo.Marshal()[:9]); err == nil {
		t.Fatal("truncated payload must error")
	}
}

// TestParallelLearnConsistency: the fully in-situ variant must produce
// an identical global model on every rank, equal to the serial model.
func TestParallelLearnConsistency(t *testing.T) {
	const ranks = 6
	b := grid.NewBox(12, 6, 6)
	dc, err := grid.NewDecomp(b, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	full := fieldOf("T", b, func(i, j, k int) float64 {
		return float64(i*i) - 0.3*float64(j) + 0.01*float64(k*k*k)
	})
	serial := NewModel()
	serial.LearnField(full)

	results := make([]*Model, ranks)
	comm.Run(ranks, func(r *comm.Rank) {
		local := NewModel()
		local.LearnField(full.Extract(dc.Block(r.ID())))
		results[r.ID()] = ParallelLearn(r, local)
	})
	want := Derive(serial.Var("T"))
	for rank, mo := range results {
		got := Derive(mo.Var("T"))
		if got.N != want.N || !approxEq(got.Mean, want.Mean, 1e-12) ||
			!approxEq(got.Variance, want.Variance, 1e-9) ||
			!approxEq(got.Skewness, want.Skewness, 1e-9) ||
			!approxEq(got.Kurtosis, want.Kurtosis, 1e-9) {
			t.Fatalf("rank %d: parallel learn differs:\n got %+v\nwant %+v", rank, got, want)
		}
	}
	// Consistency: all ranks share the exact same (deterministic
	// reduction tree) result.
	for rank := 1; rank < ranks; rank++ {
		if *results[rank].Var("T") != *results[0].Var("T") {
			t.Fatalf("rank %d model differs bitwise from rank 0", rank)
		}
	}
}

// TestHybridEqualsInSitu: the hybrid learn(in-situ)+derive(in-transit)
// path must match the fully in-situ path.
func TestHybridEqualsInSitu(t *testing.T) {
	b := grid.NewBox(10, 10, 5)
	dc, err := grid.NewDecomp(b, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	full := fieldOf("OH", b, func(i, j, k int) float64 {
		return float64((i+1)*(j+2)) / float64(k+3)
	})
	// Hybrid: each rank marshals its partial model; a serial process
	// aggregates.
	var partials [][]byte
	for r := 0; r < dc.Ranks(); r++ {
		local := NewModel()
		local.LearnField(full.Extract(dc.Block(r)))
		partials = append(partials, local.Marshal())
	}
	global, err := AggregateSerial(partials)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewModel()
	serial.LearnField(full)
	g, s := Derive(global.Var("OH")), Derive(serial.Var("OH"))
	if g.N != s.N || !approxEq(g.Mean, s.Mean, 1e-12) || !approxEq(g.Variance, s.Variance, 1e-9) {
		t.Fatalf("hybrid aggregation differs: %+v vs %+v", g, s)
	}
}

func TestAggregateSerialError(t *testing.T) {
	if _, err := AggregateSerial([][]byte{{1, 2}}); err == nil {
		t.Fatal("malformed partial must error")
	}
}

// TestDataReductionRatio documents the hybrid variant's payload size:
// a 14-variable model is a few hundred bytes regardless of block size.
func TestDataReductionRatio(t *testing.T) {
	b := grid.NewBox(20, 20, 20)
	mo := NewModel()
	vars := []string{"T", "u", "v", "w", "P", "Y_H2", "Y_O2", "Y_H2O", "Y_OH",
		"Y_HO2", "Y_H2O2", "Y_H", "Y_O", "Y_N2"}
	for _, name := range vars {
		mo.LearnField(fieldOf(name, b, func(i, j, k int) float64 { return float64(i + j + k) }))
	}
	payload := len(mo.Marshal())
	raw := len(vars) * b.Size() * 8
	if payload >= raw/1000 {
		t.Fatalf("model payload %d bytes is not a >1000x reduction of %d raw bytes", payload, raw)
	}
}
