// Package stats implements the numerically stable, single-pass,
// parallel descriptive-statistics algorithms of Bennett, Pébay, Roe &
// Thompson (CLUSTER 2009) that the paper deploys in-situ and
// in-transit, organized in the four-stage Learn / Derive / Assess /
// Test design pattern of its Figure 4. Learn is the only stage that
// requires inter-process communication: partial models (cardinality,
// extrema, and centered aggregates up to fourth order) are exchanged
// and combined with the pairwise update formulas.
package stats

import (
	"fmt"
	"math"

	"insitu/internal/parallel"
)

// Moments is the primary statistical model for one variable: the
// single-pass accumulator of cardinality, extrema and centered sums
// M2..M4 about the running mean. The zero value is an empty model
// ready for use.
type Moments struct {
	N    int64   // number of observations
	Min  float64 // minimum observed value
	Max  float64 // maximum observed value
	Mean float64 // running mean
	M2   float64 // sum (x - mean)^2
	M3   float64 // sum (x - mean)^3
	M4   float64 // sum (x - mean)^4
}

// NewMoments returns an empty model. Min/Max are initialized to the
// empty-set conventions +Inf/-Inf.
func NewMoments() *Moments {
	return &Moments{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Update folds a single observation into the model using the
// incremental (n -> n+1) one-pass update.
func (m *Moments) Update(x float64) {
	if m.N == 0 && m.Min == 0 && m.Max == 0 {
		// Zero-value struct: adopt empty-set extrema conventions.
		m.Min, m.Max = math.Inf(1), math.Inf(-1)
	}
	n1 := float64(m.N)
	m.N++
	n := float64(m.N)
	delta := x - m.Mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.Mean += deltaN
	m.M4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.M2 - 4*deltaN*m.M3
	m.M3 += term1*deltaN*(n-2) - 3*deltaN*m.M2
	m.M2 += term1
	if x < m.Min {
		m.Min = x
	}
	if x > m.Max {
		m.Max = x
	}
}

// UpdateBatch folds a slice of observations into the model.
func (m *Moments) UpdateBatch(xs []float64) {
	for _, x := range xs {
		m.Update(x)
	}
}

// updateChunk is the observation-count threshold above which the batch
// kernels go parallel, and the fixed partition width they use. Because
// the partition depends only on the input length — never on the worker
// count — the chunked result is identical on every machine: per-chunk
// partial models are combined in ascending chunk order, the paper's
// in-situ reduction shape (learn is "the only stage that requires
// inter-process communication"; Combine is its pairwise update).
const updateChunk = 1 << 14

// UpdateBatchParallel folds a slice of observations into the model
// using the shared worker pool: each fixed-width chunk accumulates an
// independent partial model, and the partials fold into m in chunk
// order via Combine. The result is deterministic (width-independent)
// and agrees with UpdateBatch to floating-point reassociation — the
// acceptance bound is 1e-12 on derived moments. Inputs shorter than
// one chunk take the serial path and match UpdateBatch bitwise.
func (m *Moments) UpdateBatchParallel(xs []float64) {
	if len(xs) <= updateChunk {
		m.UpdateBatch(xs)
		return
	}
	nc := (len(xs) + updateChunk - 1) / updateChunk
	parts := make([]Moments, nc)
	parallel.ForChunks(len(xs), updateChunk, func(c, lo, hi int) {
		parts[c] = Moments{Min: math.Inf(1), Max: math.Inf(-1)}
		parts[c].UpdateBatch(xs[lo:hi])
	})
	for c := range parts {
		m.Combine(&parts[c])
	}
}

// Combine merges another partial model into m using the pairwise
// update formulas (Pébay 2008), the operation the parallel learn stage
// reduces with. It is associative and commutative up to floating-point
// rounding.
func (m *Moments) Combine(o *Moments) {
	if o == nil || o.N == 0 {
		return
	}
	if m.N == 0 {
		*m = *o
		return
	}
	na, nb := float64(m.N), float64(o.N)
	n := na + nb
	delta := o.Mean - m.Mean
	delta2 := delta * delta
	delta3 := delta2 * delta
	delta4 := delta2 * delta2

	mean := m.Mean + delta*nb/n
	M2 := m.M2 + o.M2 + delta2*na*nb/n
	M3 := m.M3 + o.M3 + delta3*na*nb*(na-nb)/(n*n) +
		3*delta*(na*o.M2-nb*m.M2)/n
	M4 := m.M4 + o.M4 + delta4*na*nb*(na*na-na*nb+nb*nb)/(n*n*n) +
		6*delta2*(na*na*o.M2+nb*nb*m.M2)/(n*n) +
		4*delta*(na*o.M3-nb*m.M3)/n

	m.N += o.N
	m.Mean = mean
	m.M2 = M2
	m.M3 = M3
	m.M4 = M4
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
}

// Clone returns a copy of the model.
func (m *Moments) Clone() *Moments {
	c := *m
	return &c
}

// String implements fmt.Stringer with a compact summary.
func (m *Moments) String() string {
	return fmt.Sprintf("n=%d min=%.6g max=%.6g mean=%.6g M2=%.6g", m.N, m.Min, m.Max, m.Mean, m.M2)
}

// Derived is the detailed statistical model computed by the derive
// stage from a minimal (Moments) model: the classical descriptive
// statistics scientists consume.
type Derived struct {
	N        int64
	Min      float64
	Max      float64
	Mean     float64
	Variance float64 // unbiased sample variance
	StdDev   float64
	Skewness float64 // g1 = sqrt(n) M3 / M2^(3/2)
	Kurtosis float64 // excess kurtosis g2 = n M4 / M2^2 - 3
}

// Derive computes the detailed model. It requires no communication and
// is where the hybrid variant's in-transit stage does its (tiny) work.
func Derive(m *Moments) Derived {
	d := Derived{N: m.N, Min: m.Min, Max: m.Max, Mean: m.Mean}
	if m.N > 1 {
		d.Variance = m.M2 / float64(m.N-1)
		d.StdDev = math.Sqrt(d.Variance)
	}
	if m.M2 > 0 && m.N > 0 {
		n := float64(m.N)
		d.Skewness = math.Sqrt(n) * m.M3 / math.Pow(m.M2, 1.5)
		d.Kurtosis = n*m.M4/(m.M2*m.M2) - 3
	}
	return d
}

// Assessment annotates one observation relative to a model.
type Assessment struct {
	Value     float64
	Deviation float64 // (x - mean) / stddev, 0 when stddev == 0
	Extreme   bool    // |deviation| > threshold used in Assess
}

// Assess annotates each observation with its standardized deviation
// from the model, marking values beyond extremeSigma standard
// deviations — the assess stage of the four-stage pattern. It is
// embarrassingly parallel.
func Assess(xs []float64, d Derived, extremeSigma float64) []Assessment {
	out := make([]Assessment, len(xs))
	for i, x := range xs {
		a := Assessment{Value: x}
		if d.StdDev > 0 {
			a.Deviation = (x - d.Mean) / d.StdDev
			a.Extreme = math.Abs(a.Deviation) > extremeSigma
		}
		out[i] = a
	}
	return out
}

// TestResult is the output of the test stage.
type TestResult struct {
	Statistic float64
	PValue    float64
	Reject    bool // at the 5% level
}

// JarqueBera computes the Jarque–Bera normality test statistic from a
// derived model — the test stage: given a model (and implicitly the
// data that produced it), compute a test statistic for hypothesis
// testing. Under H0 (normality) the statistic is asymptotically
// chi-squared with 2 degrees of freedom, so p = exp(-JB/2).
func JarqueBera(d Derived) TestResult {
	n := float64(d.N)
	jb := n / 6 * (d.Skewness*d.Skewness + d.Kurtosis*d.Kurtosis/4)
	p := math.Exp(-jb / 2)
	return TestResult{Statistic: jb, PValue: p, Reject: p < 0.05}
}
