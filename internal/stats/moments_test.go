package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMoments computes the reference two-pass statistics.
func naiveMoments(xs []float64) (mean, m2, m3, m4, lo, hi float64) {
	n := float64(len(xs))
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		mean += x
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	mean /= n
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	return
}

func sample(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
	}
	return xs
}

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func TestUpdateMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 10, 1000} {
		xs := sample(rng, n)
		m := NewMoments()
		m.UpdateBatch(xs)
		mean, m2, m3, m4, lo, hi := naiveMoments(xs)
		if m.N != int64(n) || m.Min != lo || m.Max != hi {
			t.Fatalf("n=%d: counters wrong: %+v", n, m)
		}
		if !approxEq(m.Mean, mean, 1e-12) || !approxEq(m.M2, m2, 1e-10) ||
			!approxEq(m.M3, m3, 1e-9) || !approxEq(m.M4, m4, 1e-9) {
			t.Fatalf("n=%d: single-pass diverged: got (%g %g %g %g) want (%g %g %g %g)",
				n, m.Mean, m.M2, m.M3, m.M4, mean, m2, m3, m4)
		}
	}
}

func TestZeroValueMoments(t *testing.T) {
	var m Moments // zero value, not NewMoments
	m.Update(5)
	m.Update(-3)
	if m.Min != -3 || m.Max != 5 || m.N != 2 {
		t.Fatalf("zero-value accumulator broken: %+v", m)
	}
}

func TestCombineMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := sample(rng, 5000)
	whole := NewMoments()
	whole.UpdateBatch(xs)
	// Split into uneven parts and combine.
	parts := []int{0, 17, 1200, 1201, 4000, 5000}
	combined := NewMoments()
	for i := 1; i < len(parts); i++ {
		p := NewMoments()
		p.UpdateBatch(xs[parts[i-1]:parts[i]])
		combined.Combine(p)
	}
	if combined.N != whole.N || combined.Min != whole.Min || combined.Max != whole.Max {
		t.Fatalf("counters differ: %+v vs %+v", combined, whole)
	}
	if !approxEq(combined.Mean, whole.Mean, 1e-12) ||
		!approxEq(combined.M2, whole.M2, 1e-10) ||
		!approxEq(combined.M3, whole.M3, 1e-8) ||
		!approxEq(combined.M4, whole.M4, 1e-8) {
		t.Fatalf("pairwise combine diverged:\n got %+v\nwant %+v", combined, whole)
	}
}

func TestCombineEmptyAndSelf(t *testing.T) {
	m := NewMoments()
	m.UpdateBatch([]float64{1, 2, 3})
	before := *m
	m.Combine(NewMoments()) // empty contributes nothing
	if *m != before {
		t.Fatal("combining an empty model changed the accumulator")
	}
	m.Combine(nil)
	if *m != before {
		t.Fatal("combining nil changed the accumulator")
	}
	empty := NewMoments()
	empty.Combine(m)
	if empty.N != 3 || !approxEq(empty.Mean, 2, 1e-15) {
		t.Fatalf("combine into empty failed: %+v", empty)
	}
}

// TestCombineAssociativityProperty: ((a+b)+c) == (a+(b+c)) within
// floating-point tolerance, for random partitions.
func TestCombineAssociativityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewMoments()
		a.UpdateBatch(sample(rng, 1+rng.Intn(50)))
		b := NewMoments()
		b.UpdateBatch(sample(rng, 1+rng.Intn(50)))
		c := NewMoments()
		c.UpdateBatch(sample(rng, 1+rng.Intn(50)))

		left := a.Clone()
		left.Combine(b)
		left.Combine(c)

		bc := b.Clone()
		bc.Combine(c)
		right := a.Clone()
		right.Combine(bc)

		return left.N == right.N &&
			approxEq(left.Mean, right.Mean, 1e-10) &&
			approxEq(left.M2, right.M2, 1e-8) &&
			approxEq(left.M3, right.M3, 1e-6) &&
			approxEq(left.M4, right.M4, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeriveKnownDistribution(t *testing.T) {
	// Constant data.
	m := NewMoments()
	m.UpdateBatch([]float64{4, 4, 4, 4})
	d := Derive(m)
	if d.Variance != 0 || d.StdDev != 0 || d.Skewness != 0 || d.Kurtosis != 0 {
		t.Fatalf("constant data must have zero spread: %+v", d)
	}
	// {1..5}: mean 3, sample variance 2.5.
	m2 := NewMoments()
	m2.UpdateBatch([]float64{1, 2, 3, 4, 5})
	d2 := Derive(m2)
	if !approxEq(d2.Mean, 3, 1e-15) || !approxEq(d2.Variance, 2.5, 1e-12) {
		t.Fatalf("derive wrong: %+v", d2)
	}
	if math.Abs(d2.Skewness) > 1e-12 {
		t.Fatalf("symmetric data must have zero skewness, got %g", d2.Skewness)
	}
}

func TestDeriveGaussianShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMoments()
	for i := 0; i < 200000; i++ {
		m.Update(rng.NormFloat64()*2 + 5)
	}
	d := Derive(m)
	if !approxEq(d.Mean, 5, 0.01) || !approxEq(d.StdDev, 2, 0.01) {
		t.Fatalf("gaussian mean/stddev off: %+v", d)
	}
	if math.Abs(d.Skewness) > 0.05 || math.Abs(d.Kurtosis) > 0.1 {
		t.Fatalf("gaussian shape off: skew %g kurt %g", d.Skewness, d.Kurtosis)
	}
}

func TestAssess(t *testing.T) {
	m := NewMoments()
	m.UpdateBatch([]float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 10})
	d := Derive(m)
	as := Assess([]float64{0, 10, d.Mean}, d, 2)
	if as[2].Deviation != 0 {
		t.Fatalf("mean must deviate 0, got %g", as[2].Deviation)
	}
	if !as[1].Extreme {
		t.Fatal("outlier must be flagged extreme")
	}
	if as[0].Extreme {
		t.Fatal("typical value must not be extreme")
	}
	// Degenerate model: no flags.
	zero := Derive(NewMoments())
	for _, a := range Assess([]float64{1, 2}, zero, 2) {
		if a.Extreme || a.Deviation != 0 {
			t.Fatal("degenerate model must not flag anything")
		}
	}
}

func TestJarqueBera(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gauss := NewMoments()
	skewed := NewMoments()
	for i := 0; i < 50000; i++ {
		gauss.Update(rng.NormFloat64())
		e := rng.ExpFloat64()
		skewed.Update(e * e)
	}
	tg := JarqueBera(Derive(gauss))
	ts := JarqueBera(Derive(skewed))
	if tg.Reject {
		t.Fatalf("normality rejected for gaussian data: %+v", tg)
	}
	if !ts.Reject {
		t.Fatalf("normality not rejected for squared-exponential data: %+v", ts)
	}
	if ts.Statistic <= tg.Statistic {
		t.Fatal("skewed data must have larger JB statistic")
	}
}
