// Package trace renders the pipeline's execution timeline — when each
// simulation step ran, when each in-transit task occupied which staging
// bucket, and the instantaneous marks the fault and overload stories
// leave behind (degradations, dead-letters, breaker and ladder moves) —
// as a text Gantt chart plus per-lane utilization. It makes the paper's
// temporal multiplexing directly visible: successive timesteps' slow
// in-transit tasks overlap on different buckets while the simulation
// marches ahead.
//
// Since the observability plane (internal/obs) became the system of
// record, Timeline is a legacy view over an obs.Recorder: Add and Mark
// record spans under the obs.CatTimeline category, and the Gantt and
// Utilization renderers consume exactly those spans. The rendered text
// is unchanged, while the same spans also feed the Chrome-trace and
// JSONL exporters.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"insitu/internal/obs"
)

// Span is one timed interval on a lane, as rendered by the Gantt view.
type Span struct {
	Lane  string // "sim", "bucket-N", or "overload"
	Label string // e.g. "step 3" or "topology@3"
	Start time.Time
	End   time.Time
}

// Timeline records Gantt spans into an obs.Recorder. The zero value is
// usable (it lazily creates a private recorder); Over attaches a
// timeline to a shared recorder so its spans join a full-run trace.
type Timeline struct {
	mu  sync.Mutex
	rec *obs.Recorder
}

// New creates a timeline over a fresh recorder anchored at now.
func New() *Timeline { return Over(obs.NewRecorder()) }

// Over creates a timeline view recording into (and rendering from) the
// given recorder.
func Over(rec *obs.Recorder) *Timeline { return &Timeline{rec: rec} }

// recorder returns the backing recorder, creating one on first use so
// the zero value keeps working.
func (tl *Timeline) recorder() *obs.Recorder {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.rec == nil {
		tl.rec = obs.NewRecorder()
	}
	return tl.rec
}

// Recorder exposes the backing recorder, so the timeline's spans can
// be exported alongside the rest of the observability plane.
func (tl *Timeline) Recorder() *obs.Recorder { return tl.recorder() }

// Anchor returns the timeline origin.
func (tl *Timeline) Anchor() time.Time { return tl.recorder().Anchor() }

// Add records a span.
func (tl *Timeline) Add(lane, label string, start, end time.Time) {
	tl.recorder().Record(0, obs.CatTimeline, lane, label, start, end)
}

// Mark records an instantaneous event — a fault, a degradation
// decision, a dead-letter — as a zero-length span on a lane.
func (tl *Timeline) Mark(lane, label string, at time.Time) {
	tl.Add(lane, label, at, at)
}

// Spans returns a copy of all recorded timeline spans, sorted by start
// time. Spans other categories recorded into a shared recorder are not
// included: the Gantt renders exactly what Add and Mark recorded.
func (tl *Timeline) Spans() []Span {
	src := tl.recorder().SpansCat(obs.CatTimeline)
	out := make([]Span, len(src))
	for i, s := range src {
		out[i] = Span{Lane: s.Lane, Label: s.Name, Start: s.Start, End: s.End}
	}
	return out
}

// Lanes returns the distinct lane names, "sim" first, then sorted.
func (tl *Timeline) Lanes() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range tl.Spans() {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			out = append(out, s.Lane)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i] == "sim" {
			return true
		}
		if out[j] == "sim" {
			return false
		}
		return out[i] < out[j]
	})
	return out
}

// Gantt renders the timeline as text, `width` characters across. Each
// lane is one row; spans draw as runs of '#' with the span's first
// label character where it fits.
func (tl *Timeline) Gantt(width int) string {
	spans := tl.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	start := spans[0].Start
	end := spans[0].End
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		total = time.Nanosecond
	}
	cell := func(t time.Time) int {
		c := int(float64(width) * float64(t.Sub(start)) / float64(total))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %v total, one column ~ %v\n", total.Round(time.Microsecond),
		(total / time.Duration(width)).Round(time.Microsecond))
	for _, lane := range tl.Lanes() {
		row := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.Lane != lane {
				continue
			}
			a, b := cell(s.Start), cell(s.End)
			for c := a; c <= b; c++ {
				row[c] = '#'
			}
			if len(s.Label) > 0 {
				row[a] = s.Label[0]
			}
		}
		fmt.Fprintf(&sb, "%-12s |%s|\n", lane, row)
	}
	return sb.String()
}

// Utilization returns, per lane, the fraction of the timeline's span
// covered by work (overlapping spans merged).
func (tl *Timeline) Utilization() map[string]float64 {
	spans := tl.Spans()
	if len(spans) == 0 {
		return nil
	}
	start := spans[0].Start
	end := spans[0].End
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, lane := range tl.Lanes() {
		type iv struct{ a, b time.Time }
		var ivs []iv
		for _, s := range spans {
			if s.Lane == lane {
				ivs = append(ivs, iv{s.Start, s.End})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
		var busy time.Duration
		var curA, curB time.Time
		for i, v := range ivs {
			if i == 0 {
				curA, curB = v.a, v.b
				continue
			}
			if v.a.After(curB) {
				busy += curB.Sub(curA)
				curA, curB = v.a, v.b
				continue
			}
			if v.b.After(curB) {
				curB = v.b
			}
		}
		busy += curB.Sub(curA)
		out[lane] = float64(busy) / float64(total)
	}
	return out
}
