// Package trace records the pipeline's execution timeline — when each
// simulation step ran and when each in-transit task occupied which
// staging bucket — and renders it as a text Gantt chart. It makes the
// paper's temporal multiplexing directly visible: successive
// timesteps' slow in-transit tasks overlap on different buckets while
// the simulation marches ahead.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed interval on a lane.
type Span struct {
	Lane  string // "sim" or "bucket-N"
	Label string // e.g. "step 3" or "topology@3"
	Start time.Time
	End   time.Time
}

// Timeline collects spans concurrently.
type Timeline struct {
	mu    sync.Mutex
	spans []Span
	t0    time.Time
}

// New creates a timeline anchored at now.
func New() *Timeline {
	return &Timeline{t0: time.Now()}
}

// Anchor returns the timeline origin.
func (tl *Timeline) Anchor() time.Time { return tl.t0 }

// Add records a span.
func (tl *Timeline) Add(lane, label string, start, end time.Time) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.spans = append(tl.spans, Span{Lane: lane, Label: label, Start: start, End: end})
}

// Mark records an instantaneous event — a fault, a degradation
// decision, a dead-letter — as a zero-length span on a lane.
func (tl *Timeline) Mark(lane, label string, at time.Time) {
	tl.Add(lane, label, at, at)
}

// Spans returns a copy of all recorded spans, sorted by start time.
func (tl *Timeline) Spans() []Span {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := append([]Span{}, tl.spans...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Lanes returns the distinct lane names, "sim" first, then sorted.
func (tl *Timeline) Lanes() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range tl.Spans() {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			out = append(out, s.Lane)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i] == "sim" {
			return true
		}
		if out[j] == "sim" {
			return false
		}
		return out[i] < out[j]
	})
	return out
}

// Gantt renders the timeline as text, `width` characters across. Each
// lane is one row; spans draw as runs of '#' with the span's first
// label character where it fits.
func (tl *Timeline) Gantt(width int) string {
	spans := tl.Spans()
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	start := spans[0].Start
	end := spans[0].End
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		total = time.Nanosecond
	}
	cell := func(t time.Time) int {
		c := int(float64(width) * float64(t.Sub(start)) / float64(total))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline: %v total, one column ~ %v\n", total.Round(time.Microsecond),
		(total / time.Duration(width)).Round(time.Microsecond))
	for _, lane := range tl.Lanes() {
		row := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.Lane != lane {
				continue
			}
			a, b := cell(s.Start), cell(s.End)
			for c := a; c <= b; c++ {
				row[c] = '#'
			}
			if len(s.Label) > 0 {
				row[a] = s.Label[0]
			}
		}
		fmt.Fprintf(&sb, "%-12s |%s|\n", lane, row)
	}
	return sb.String()
}

// Utilization returns, per lane, the fraction of the timeline's span
// covered by work (overlapping spans merged).
func (tl *Timeline) Utilization() map[string]float64 {
	spans := tl.Spans()
	if len(spans) == 0 {
		return nil
	}
	start := spans[0].Start
	end := spans[0].End
	for _, s := range spans {
		if s.Start.Before(start) {
			start = s.Start
		}
		if s.End.After(end) {
			end = s.End
		}
	}
	total := end.Sub(start)
	if total <= 0 {
		return nil
	}
	out := make(map[string]float64)
	for _, lane := range tl.Lanes() {
		type iv struct{ a, b time.Time }
		var ivs []iv
		for _, s := range spans {
			if s.Lane == lane {
				ivs = append(ivs, iv{s.Start, s.End})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].a.Before(ivs[j].a) })
		var busy time.Duration
		var curA, curB time.Time
		for i, v := range ivs {
			if i == 0 {
				curA, curB = v.a, v.b
				continue
			}
			if v.a.After(curB) {
				busy += curB.Sub(curA)
				curA, curB = v.a, v.b
				continue
			}
			if v.b.After(curB) {
				curB = v.b
			}
		}
		busy += curB.Sub(curA)
		out[lane] = float64(busy) / float64(total)
	}
	return out
}
