package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func mk(t0 time.Time, lane, label string, startMs, endMs int) Span {
	return Span{
		Lane:  lane,
		Label: label,
		Start: t0.Add(time.Duration(startMs) * time.Millisecond),
		End:   t0.Add(time.Duration(endMs) * time.Millisecond),
	}
}

func TestSpansSorted(t *testing.T) {
	tl := New()
	t0 := tl.Anchor()
	b := mk(t0, "b", "later", 10, 20)
	a := mk(t0, "a", "earlier", 0, 5)
	tl.Add(b.Lane, b.Label, b.Start, b.End)
	tl.Add(a.Lane, a.Label, a.Start, a.End)
	spans := tl.Spans()
	if len(spans) != 2 || spans[0].Label != "earlier" {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
}

func TestLanesSimFirst(t *testing.T) {
	tl := New()
	t0 := tl.Anchor()
	for _, lane := range []string{"bucket-1", "bucket-0", "sim"} {
		s := mk(t0, lane, "x", 0, 1)
		tl.Add(s.Lane, s.Label, s.Start, s.End)
	}
	lanes := tl.Lanes()
	if lanes[0] != "sim" || lanes[1] != "bucket-0" || lanes[2] != "bucket-1" {
		t.Fatalf("lane order wrong: %v", lanes)
	}
}

func TestGanttRendering(t *testing.T) {
	tl := New()
	t0 := tl.Anchor()
	s1 := mk(t0, "sim", "step 1", 0, 10)
	s2 := mk(t0, "bucket-0", "topology@1", 10, 100)
	tl.Add(s1.Lane, s1.Label, s1.Start, s1.End)
	tl.Add(s2.Lane, s2.Label, s2.Start, s2.End)
	out := tl.Gantt(40)
	if !strings.Contains(out, "sim") || !strings.Contains(out, "bucket-0") {
		t.Fatalf("lanes missing:\n%s", out)
	}
	// The bucket row must contain a long run of '#'.
	lines := strings.Split(out, "\n")
	var bucketRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "bucket-0") {
			bucketRow = l
		}
	}
	if strings.Count(bucketRow, "#") < 20 {
		t.Fatalf("bucket span not drawn:\n%s", out)
	}
	if (&Timeline{}).Gantt(40) != "(empty timeline)\n" {
		t.Fatal("empty timeline rendering wrong")
	}
}

func TestUtilization(t *testing.T) {
	tl := New()
	t0 := tl.Anchor()
	// Lane "a" busy 0-50 and 25-75 (merged: 0-75 of 0-100 = 0.75).
	for _, s := range []Span{
		mk(t0, "a", "x", 0, 50),
		mk(t0, "a", "y", 25, 75),
		mk(t0, "b", "z", 0, 100),
	} {
		tl.Add(s.Lane, s.Label, s.Start, s.End)
	}
	u := tl.Utilization()
	if u["b"] < 0.99 {
		t.Fatalf("lane b should be fully busy: %v", u)
	}
	if u["a"] < 0.74 || u["a"] > 0.76 {
		t.Fatalf("lane a overlap merge wrong: %v", u)
	}
	if (&Timeline{}).Utilization() != nil {
		t.Fatal("empty utilization must be nil")
	}
}

func TestConcurrentAdds(t *testing.T) {
	tl := New()
	t0 := tl.Anchor()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := mk(t0, "lane", "x", i, i+1)
				tl.Add(s.Lane, s.Label, s.Start, s.End)
			}
		}(w)
	}
	wg.Wait()
	if len(tl.Spans()) != 800 {
		t.Fatalf("lost spans: %d", len(tl.Spans()))
	}
}
