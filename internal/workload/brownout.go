package workload

import (
	"insitu/internal/core"
	"insitu/internal/registry"
)

// The brownout scenario is the overload-control soak: a fixed-seed
// slow-consumer schedule (a faults.SlowdownWindow collapsing every
// transfer's bandwidth by BrownoutFactor for a window of the run)
// drives the staging tier into sustained overload while the admission
// ladder, the per-route circuit breakers, and the credit account keep
// the simulation loop's per-step wall time bounded. After the window
// closes the half-open probes re-close the breakers and the ladder
// climbs back to full hybrid, rung by rung.
//
// All constants are exported so the soak test and the s3dpipe
// -overload scenario run the identical configuration.
const (
	// BrownoutSteps is the length of the soak in simulation steps.
	BrownoutSteps = 60
	// BrownoutSeed fixes the injector PRNG (the schedule is pure
	// window, but the seed pins the decision sequence regardless).
	BrownoutSeed = 42
	// BrownoutFrom/BrownoutUntil bound the slowdown window in
	// decision-index space: roughly four healthy steps' worth of pulls
	// run first, then the window stays open until backlog pulls and
	// failed half-open probes have consumed it. The six-rung ladder
	// (full → delta → quantized → shaped → in-situ → shed) needs a
	// longer window than the original four-rung one: the byte-shrinking
	// rungs still submit tasks, so each extra descent costs the window
	// several pull decisions before pressure reaches the shed rung.
	BrownoutFrom  = 16
	BrownoutUntil = 48
	// BrownoutFactor multiplies every covered transfer's modeled
	// duration — a ~400x bandwidth collapse, the "slow consumer".
	BrownoutFactor = 400
	// BrownoutTimeScale converts modeled durations into real sleeps so
	// the collapse manifests as wall-clock staging latency the breaker
	// and estimator can observe.
	BrownoutTimeScale = 0.1
)

// NewBrownoutPipeline builds the brownout pipeline: a 2-rank
// simulation with the two hybrid routes (visualization, which shapes;
// statistics, which does not) over a 2-bucket staging tier with
// overload control enabled. With brownout=false it returns the
// unloaded twin — the identical pipeline without the fault schedule —
// whose per-step wall times are the soak's baseline.
//
// The second return value lists the hybrid route names.
//
// Since the registry refactor this is a thin wrapper over
// registry.Build(BrownoutConfig(brownout)): the tuning rationale lives
// with the config in configs.go, and the soak exercises the same
// construction path as `s3dpipe -config examples/configs/brownout.json`.
func NewBrownoutPipeline(brownout bool) (*core.Pipeline, []string, error) {
	b, err := registry.Build(BrownoutConfig(brownout))
	if err != nil {
		return nil, nil, err
	}
	return b.Pipeline, b.Tenants[0].Routes, nil
}
