package workload

import (
	"time"

	"insitu/internal/core"
	"insitu/internal/faults"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/overload"
	"insitu/internal/sim"
)

// The brownout scenario is the overload-control soak: a fixed-seed
// slow-consumer schedule (a faults.SlowdownWindow collapsing every
// transfer's bandwidth by BrownoutFactor for a window of the run)
// drives the staging tier into sustained overload while the admission
// ladder, the per-route circuit breakers, and the credit account keep
// the simulation loop's per-step wall time bounded. After the window
// closes the half-open probes re-close the breakers and the ladder
// climbs back to full hybrid, rung by rung.
//
// All constants are exported so the soak test and the s3dpipe
// -overload scenario run the identical configuration.
const (
	// BrownoutSteps is the length of the soak in simulation steps.
	BrownoutSteps = 60
	// BrownoutSeed fixes the injector PRNG (the schedule is pure
	// window, but the seed pins the decision sequence regardless).
	BrownoutSeed = 42
	// BrownoutFrom/BrownoutUntil bound the slowdown window in
	// decision-index space: roughly four healthy steps' worth of pulls
	// run first, then the window stays open until backlog pulls and
	// failed half-open probes have consumed it. The six-rung ladder
	// (full → delta → quantized → shaped → in-situ → shed) needs a
	// longer window than the original four-rung one: the byte-shrinking
	// rungs still submit tasks, so each extra descent costs the window
	// several pull decisions before pressure reaches the shed rung.
	BrownoutFrom  = 16
	BrownoutUntil = 48
	// BrownoutFactor multiplies every covered transfer's modeled
	// duration — a ~400x bandwidth collapse, the "slow consumer".
	BrownoutFactor = 400
	// BrownoutTimeScale converts modeled durations into real sleeps so
	// the collapse manifests as wall-clock staging latency the breaker
	// and estimator can observe.
	BrownoutTimeScale = 0.1
)

// NewBrownoutPipeline builds the brownout pipeline: a 2-rank
// simulation with the two hybrid routes (visualization, which shapes;
// statistics, which does not) over a 2-bucket staging tier with
// overload control enabled. With brownout=false it returns the
// unloaded twin — the identical pipeline without the fault schedule —
// whose per-step wall times are the soak's baseline.
//
// The second return value lists the hybrid route names.
func NewBrownoutPipeline(brownout bool) (*core.Pipeline, []string, error) {
	simCfg := sim.DefaultConfig(grid.NewBox(24, 16, 8), 2, 1, 1)
	simCfg.SubSteps = 4

	net := netsim.Gemini()
	net.TimeScale = BrownoutTimeScale

	cfg := core.Config{
		Sim:       simCfg,
		DSServers: 2,
		Buckets:   2,
		Net:       net,
		// A generous per-task data-movement deadline: browned-out pulls
		// are slow, not lost, and must still drain the backlog.
		StepBudget: 500 * time.Millisecond,
		Overload: &overload.Config{
			Breaker: overload.BreakerConfig{
				FailureThreshold: 3,
				// Two browned-out task completions push the success-latency
				// EWMA over the threshold and trip the route open.
				LatencyThreshold: 5 * time.Millisecond,
				LatencyAlpha:     0.5,
				// Short cooldown relative to the step cadence, so the
				// half-open probe runs nearly every step while open.
				Cooldown: 2 * time.Millisecond,
			},
			Ladder: overload.LadderConfig{
				QueueHigh: 3, QueueLow: 1,
				// Latency watermarks stay disabled: the latency EWMA only
				// moves when tasks complete, so a shedding route would pin
				// it high and never observe recovery. Breaker state,
				// credit availability and queue depth are live signals.
				DegradeAfter: 1, RecoverAfter: 2,
			},
			QueueBound: 4,
			// The probe verdict compares the *modeled* probe duration:
			// healthy ~1.5us, browned-out ~400x that. 50us separates them
			// deterministically, independent of scheduler noise.
			ProbeLatencyMax: 50 * time.Microsecond,
		},
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, nil, err
	}
	if brownout {
		p.Network().SetFaults(faults.New(faults.Config{
			Seed: BrownoutSeed,
			Slowdowns: []faults.SlowdownWindow{
				{From: BrownoutFrom, Until: BrownoutUntil, Factor: BrownoutFactor},
			},
		}))
	}

	viz := core.NewVizHybrid(20, 16, 2)
	stats := &core.StatsHybrid{Vars: []string{"T", "P"}}
	p.Register(viz)
	p.Register(stats)
	return p, []string{viz.Name(), stats.Name()}, nil
}
