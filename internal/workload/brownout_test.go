package workload

import (
	"strings"
	"testing"
	"time"

	"insitu/internal/core"
	"insitu/internal/overload"
)

// TestBrownoutSoak is the overload-control acceptance soak: a seeded
// slow-consumer window collapses staging bandwidth mid-run, and the
// control plane must (1) keep every simulation step's wall time within
// 2x the unloaded baseline, (2) mark every shaped and shed step with a
// ladder reason, (3) trip each route's breaker open and re-close it
// through the half-open probe, (4) return to full hybrid before the
// run ends, and (5) leak neither credits nor pinned regions.
func TestBrownoutSoak(t *testing.T) {
	// Unloaded twin first: its slowest step is the baseline.
	base, routes, err := NewBrownoutPipeline(false)
	if err != nil {
		t.Fatal(err)
	}
	baseRep, err := base.Run(BrownoutSteps)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	baseline := baseRep.Metrics.MaxStepWall()
	if baseline <= 0 {
		t.Fatal("baseline recorded no step wall times")
	}

	p, _, err := NewBrownoutPipeline(true)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(BrownoutSteps)
	if err != nil {
		t.Fatalf("brownout run failed: %v", err)
	}

	// (1) Bounded per-step simulation wall time: 2x the unloaded twin,
	// plus a constant allowance for scheduler noise — max-vs-max across
	// two separate runs carries additive jitter that does not scale
	// with the baseline, and `go test ./...` runs sibling packages'
	// soaks concurrently on the same (possibly single-CPU) box.
	bound := 2*baseline + 50*time.Millisecond
	worst := rep.Metrics.MaxStepWall()
	t.Logf("step wall: baseline max %v, brownout max %v (bound %v)", baseline, worst, bound)
	if worst > bound {
		for s, d := range rep.Metrics.StepWalls() {
			if d > bound {
				t.Errorf("step %d wall %v exceeds bound %v", s, d, bound)
			}
		}
		t.Fatalf("simulation blocked: worst step wall %v > %v", worst, bound)
	}

	// (2) Every step of every route accounted for, with markers naming
	// the ladder rung on anything that was not full hybrid.
	o := rep.Overload
	t.Logf("overload: %+v", o)
	t.Logf("resilience: %+v", rep.Resilience)
	degradedTail := 0
	for _, name := range routes {
		for step := 1; step <= BrownoutSteps; step++ {
			out := rep.Result(name, step)
			if out == nil {
				t.Fatalf("%s step %d has no stored result", name, step)
			}
			if d, ok := out.(core.Degraded); ok {
				if d.Reason == "" {
					t.Fatalf("%s step %d degraded without a reason", name, step)
				}
				if step > BrownoutSteps-5 {
					degradedTail++
					t.Errorf("%s step %d still degraded at run end: %s", name, step, d.Reason)
				}
			}
		}
	}
	// (4) Full recovery: the final steps run full hybrid on every route.
	if degradedTail > 0 {
		t.Fatalf("%d route-steps in the final 5 steps still degraded", degradedTail)
	}

	// (3) Graded degradation happened and was counted: the ladder
	// shaped before it shed, and the breakers tripped and re-closed.
	if o.StepsShaped < 1 {
		t.Error("no steps were shaped")
	}
	if o.StepsShed < 1 {
		t.Error("no steps were shed")
	}
	if o.BreakerOpens < 1 {
		t.Error("no breaker ever opened")
	}
	// closed->open->half-open->closed is 3 transitions minimum.
	if o.BreakerTransitions < 3 {
		t.Errorf("breaker transitions %d: no half-open probe cycle", o.BreakerTransitions)
	}
	for name, st := range p.BreakerStates() {
		if st != overload.Closed {
			t.Errorf("route %q breaker finished %v, want closed", name, st)
		}
	}
	// Shed markers carry the ladder reason.
	shedMarked := 0
	for _, name := range routes {
		for step := 1; step <= BrownoutSteps; step++ {
			if d, ok := rep.Result(name, step).(core.Degraded); ok &&
				strings.HasPrefix(d.Reason, "shed") {
				shedMarked++
			}
		}
	}
	if int64(shedMarked) != o.StepsShed {
		t.Errorf("shed markers %d != StepsShed %d", shedMarked, o.StepsShed)
	}

	// (5) Nothing leaked: the credit account drains to its full supply
	// and no producer region stays pinned.
	c := p.Credits()
	if c.Outstanding() != 0 || c.Available() != c.Total() {
		t.Errorf("credits leaked: outstanding=%d avail=%d total=%d",
			c.Outstanding(), c.Available(), c.Total())
	}
	if got := p.PinnedRegions(); got != 0 {
		t.Errorf("%d pinned regions leaked", got)
	}
}
