// The fixed-seed acceptance scenarios exist twice on purpose: as
// declarative registry.Configs (BrownoutConfig, TenantsConfig — the
// source of truth the checked-in examples/configs files pin byte for
// byte) and as the constructors the soaks call (NewBrownoutPipeline,
// NewTenantScheduler) — which since the registry refactor just Build
// the config, so the flag path, the config path, and the soak tests
// are literally the same construction code.
package workload

import (
	"insitu/internal/core"
	"insitu/internal/registry"
)

// init registers the poison drill analysis, demonstrating that
// analysis registration is open to any package, not just the built-in
// catalog: the tenants scenario's config names "poison" like any other
// analysis.
func init() {
	registry.Register(PoisonRouteName, registry.Info{
		Doc:        "drill route whose in-transit handler fails its first fail_attempts executions",
		Placements: []registry.Placement{registry.PlaceHybrid},
		Params: map[registry.Placement][]string{
			registry.PlaceHybrid: {"fail_attempts"},
		},
		Build: func(p registry.Params) (core.Analysis, error) {
			return &poisonAnalysis{FailAttempts: int64(p.FailAttempts)}, nil
		},
	})
}

// scenarioOverload is the shared admission-plane tuning of both
// soaks: latency-sensitive breakers, a fast ladder, and a
// modeled-duration probe verdict that separates healthy from
// browned-out deterministically.
func scenarioOverload() *registry.OverloadConfig {
	return &registry.OverloadConfig{
		Breaker: registry.BreakerConfig{
			FailureThreshold: 3,
			// Two browned-out task completions push the success-latency
			// EWMA over the threshold and trip the route open.
			LatencyThresholdUS: 5000,
			LatencyAlpha:       0.5,
			// Short cooldown relative to the step cadence, so the
			// half-open probe runs nearly every step while open.
			CooldownUS: 2000,
		},
		Ladder: registry.LadderConfig{
			QueueHigh: 3, QueueLow: 1,
			// Latency watermarks stay disabled: the latency EWMA only
			// moves when tasks complete, so a shedding route would pin
			// it high and never observe recovery. Breaker state,
			// credit availability and queue depth are live signals.
			DegradeAfter: 1, RecoverAfter: 2,
		},
		QueueBound: 4,
		// The probe verdict compares the *modeled* probe duration:
		// healthy ~1.5us, browned-out ~400x that. 50us separates them
		// deterministically, independent of scheduler noise.
		ProbeLatencyMaxUS: 50,
	}
}

// scenarioSim is both soaks' 2-rank simulation in config form.
func scenarioSim() registry.SimConfig {
	return registry.SimConfig{
		NX: 24, NY: 16, NZ: 8,
		PX: 2, PY: 1, PZ: 1,
		SubSteps: 4,
	}
}

// scenarioAnalyses is the healthy hybrid route pair both soaks run:
// visualization (which shapes) and statistics (which does not).
func scenarioAnalyses() []registry.AnalysisConfig {
	return []registry.AnalysisConfig{
		{Analysis: "viz", Params: registry.Params{
			Placement: registry.PlaceHybrid, Width: 20, Height: 16, Factor: 2,
		}},
		{Analysis: "stats", Params: registry.Params{
			Placement: registry.PlaceHybrid, Vars: []string{"T", "P"},
		}},
	}
}

// BrownoutConfig is the brownout soak as a declarative pipeline
// config. With brownout=false it describes the unloaded twin: the
// identical pipeline without the fault schedule.
func BrownoutConfig(brownout bool) *registry.Config {
	buckets := 2
	cfg := &registry.Config{
		Name:  "brownout",
		Steps: BrownoutSteps,
		Fabric: registry.FabricConfig{
			DSServers: 2,
			Buckets:   &buckets,
			Net:       registry.NetConfig{Profile: "gemini", TimeScale: BrownoutTimeScale},
		},
		Tenants: []registry.TenantConfig{{
			Sim:          scenarioSim(),
			StepBudgetMS: 500,
			Overload:     scenarioOverload(),
			Analyses:     scenarioAnalyses(),
		}},
	}
	if brownout {
		cfg.Faults = &registry.FaultsConfig{
			Seed: BrownoutSeed,
			Slowdowns: []registry.SlowdownConfig{
				{From: BrownoutFrom, Until: BrownoutUntil, Factor: BrownoutFactor},
			},
		}
	}
	return cfg
}

// TenantsConfig is the multi-tenant noisy-neighbor soak as a
// declarative pipeline config. With noisy=false it describes the
// healthy twin: same three tenants and routes, a poison handler that
// never crashes, no fault schedule.
func TenantsConfig(noisy bool) *registry.Config {
	buckets := 2
	fails := 0
	if noisy {
		fails = TenantPoisonFails
	}
	tenant := func(name string, analyses []registry.AnalysisConfig) registry.TenantConfig {
		return registry.TenantConfig{
			Name:         name,
			Sim:          scenarioSim(),
			StepBudgetMS: 500,
			Overload:     scenarioOverload(),
			Analyses:     analyses,
		}
	}
	gammaAnalyses := []registry.AnalysisConfig{
		scenarioAnalyses()[0],
		{Analysis: PoisonRouteName, Params: registry.Params{
			Placement: registry.PlaceHybrid, FailAttempts: fails,
		}},
	}
	cfg := &registry.Config{
		Name:  "tenants",
		Steps: TenantSteps,
		Fabric: registry.FabricConfig{
			DSServers:     2,
			Buckets:       &buckets,
			MaxBuckets:    4,
			Net:           registry.NetConfig{Profile: "gemini", TimeScale: TenantTimeScale},
			QueueBound:    4,
			TenantReserve: 2,
			Autoscale: &registry.AutoscaleConfig{
				Min: 2, Max: 4,
				QueueHighPerBucket: 2,
				GrowAfter:          2,
				ShrinkAfter:        3,
			},
			Quarantine: &registry.QuarantineConfig{Strikes: TenantPoisonFails, ProbeAfter: 2},
		},
		Tenants: []registry.TenantConfig{
			tenant(TenantVictims[0], scenarioAnalyses()),
			tenant(TenantVictims[1], scenarioAnalyses()),
			tenant(TenantNoisy, gammaAnalyses),
		},
	}
	if noisy {
		cfg.Faults = &registry.FaultsConfig{
			Seed: TenantSeed,
			Slowdowns: []registry.SlowdownConfig{
				{From: TenantSlowFrom, Until: TenantSlowUntil, Tenant: TenantNoisy, Factor: TenantSlowFactor},
			},
		}
	}
	return cfg
}
