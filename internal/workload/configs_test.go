package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"insitu/internal/registry"
)

// configsDir is the checked-in example-config directory, relative to
// this package (tests run in the package directory).
const configsDir = "../../examples/configs"

// TestExampleConfigsLoad: every checked-in example must strictly
// decode and validate — the same gate `make configs` runs in CI.
func TestExampleConfigsLoad(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(configsDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatalf("no example configs under %s", configsDir)
	}
	for _, path := range paths {
		if _, err := registry.LoadConfig(path); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
}

// pinned asserts a checked-in example file is byte-identical to its
// code-generated source config. This is what makes the examples
// executable documentation: drift in either direction fails CI, and
// (for the scenario configs) it proves the -config path loads the
// exact pipeline the flag path builds.
func pinned(t *testing.T, file string, cfg *registry.Config) {
	t.Helper()
	want, err := cfg.Marshal()
	if err != nil {
		t.Fatalf("%s: marshal source config: %v", file, err)
	}
	got, err := os.ReadFile(filepath.Join(configsDir, file))
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from its code-generated source config.\nRegenerate it from Config.Marshal().\n--- file ---\n%s--- source ---\n%s",
			file, got, want)
	}
}

func TestTenantsExamplePinned(t *testing.T) {
	pinned(t, "tenants.json", TenantsConfig(true))
}

func TestBrownoutExamplePinned(t *testing.T) {
	pinned(t, "brownout.json", BrownoutConfig(true))
}

func TestStoreServeExamplePinned(t *testing.T) {
	cfg, err := registry.LegacyOptions{
		NX: 32, NY: 24, NZ: 8, PX: 2, PY: 2, PZ: 1,
		Steps: 6, Every: 1, SubSteps: 1,
		Buckets: 2, Servers: 2,
		StatsMode: "off", VizMode: "hybrid",
		Factor: 4, Cameras: 4, Seed: 1,
		StoreDir: "out/s3d-store",
	}.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Name = "store-serve"
	cfg.Store.Serve = ":8080"
	pinned(t, "store-serve.json", cfg)
}

func TestRecoveryExamplePinned(t *testing.T) {
	cfg, err := registry.LegacyOptions{
		NX: 32, NY: 24, NZ: 8, PX: 2, PY: 2, PZ: 1,
		Steps: 8, Every: 1, SubSteps: 1,
		Buckets: 2, Servers: 2,
		StatsMode: "hybrid", VizMode: "off",
		Topology: true, Seed: 1,
		Journal: "out/s3d-journal", CkptEvery: 4,
	}.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Name = "recovery"
	pinned(t, "recovery.json", cfg)
}

// TestScenarioConfigsRoundTrip: the scenario configs survive a
// marshal/parse round trip unchanged — what guarantees a user can dump
// them, edit, and reload without surprises.
func TestScenarioConfigsRoundTrip(t *testing.T) {
	for _, cfg := range []*registry.Config{
		TenantsConfig(true), TenantsConfig(false),
		BrownoutConfig(true), BrownoutConfig(false),
	} {
		data, err := cfg.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		back, err := registry.ParseConfig(data)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", cfg.Name, err)
		}
		data2, err := back.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !bytes.Equal(data, data2) {
			t.Errorf("%s does not round-trip:\n%s\nvs\n%s", cfg.Name, data, data2)
		}
	}
}
