package workload

import (
	"time"

	"insitu/internal/codec"
	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/overload"
	"insitu/internal/recovery"
	"insitu/internal/sim"
)

// The crash matrix is the recovery plane's chaos gate: a fixed-seed
// hybrid run with the step journal and periodic checkpoints enabled is
// killed at every journal phase boundary — before the step's admit
// record, between the per-route submit records, after the checkpoint
// files but before their journal record, and right after a commit —
// then resumed, and the resumed run must converge to the uninterrupted
// golden run: identical per-step commit digests, identical live
// results, byte-identical final checkpoint files, and no leaked
// credits or pinned buffers.
//
// All constants are exported so the soak test and the s3dpipe
// -journal/-resume scenario run the identical configuration.
const (
	// CrashMatrixSteps is the run length in simulation steps.
	CrashMatrixSteps = 10
	// CrashMatrixSeed fixes the simulation initial condition.
	CrashMatrixSeed = 7
	// CrashMatrixEvery is the checkpoint cadence in steps.
	CrashMatrixEvery = 2
)

// NewCrashMatrixPipeline builds the crash-matrix pipeline: a 2-rank
// simulation with the two hybrid routes (visualization and
// statistics), the delta codec on every route (so a resume must
// re-anchor base state correctly), and recovery journaling into dir.
// kill is the injected crash (nil for the golden run and for resumes).
//
// Overload control is enabled with non-binding thresholds: the
// admission ladder deterministically holds every step at the full
// rung, while the credit account stays live so the soak can assert
// credits re-settle exactly once across a crash/resume pair.
//
// The second return value lists the hybrid route names.
func NewCrashMatrixPipeline(dir string, kill recovery.KillFunc) (*core.Pipeline, []string, error) {
	simCfg := sim.DefaultConfig(grid.NewBox(16, 12, 6), 2, 1, 1)
	simCfg.SubSteps = 2
	simCfg.Seed = CrashMatrixSeed

	cfg := core.Config{
		Sim:       simCfg,
		DSServers: 2,
		Buckets:   2,
		Net:       netsim.Gemini(),
		Overload: &overload.Config{
			Breaker: overload.BreakerConfig{
				FailureThreshold: 1 << 20,
				Cooldown:         time.Hour,
			},
			Ladder: overload.LadderConfig{
				QueueHigh: 1 << 20, QueueLow: 1,
				DegradeAfter: 1 << 20, RecoverAfter: 1,
			},
			QueueBound:      64,
			ProbeLatencyMax: time.Hour,
		},
		Codecs: map[string]codec.Spec{"*": {ID: codec.Delta}},
		Recovery: &core.RecoveryConfig{
			Dir:   dir,
			Every: CrashMatrixEvery,
			Kill:  kill,
		},
	}
	p, err := core.NewPipeline(cfg)
	if err != nil {
		return nil, nil, err
	}
	viz := core.NewVizHybrid(20, 16, 2)
	stats := &core.StatsHybrid{Vars: []string{"T", "P"}}
	p.Register(viz)
	p.Register(stats)
	return p, []string{viz.Name(), stats.Name()}, nil
}
