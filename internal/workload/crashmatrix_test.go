package workload

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"insitu/internal/core"
	"insitu/internal/recovery"
)

// cmGolden is the uninterrupted run every crash cell must converge to.
type cmGolden struct {
	rep     *core.Report
	digests map[int]map[string]string // step -> analysis -> result digest
	ckpts   map[string][]byte         // final-step checkpoint file -> bytes
}

func goldenCrashRun(t *testing.T) *cmGolden {
	t.Helper()
	dir := t.TempDir()
	p, _, err := NewCrashMatrixPipeline(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(CrashMatrixSteps)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	if rep.Recovery == nil || rep.Recovery.Commits != CrashMatrixSteps {
		t.Fatalf("golden run: recovery = %+v, want %d commits", rep.Recovery, CrashMatrixSteps)
	}
	g := &cmGolden{
		rep:     rep,
		digests: make(map[int]map[string]string),
		ckpts:   make(map[string][]byte),
	}
	j, err := recovery.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := recovery.Analyze(j.Records())
	if st.LastCommit != CrashMatrixSteps {
		t.Fatalf("golden journal: last commit %d, want %d", st.LastCommit, CrashMatrixSteps)
	}
	for s, c := range st.Commits {
		g.digests[s] = c.Digests
	}
	for rank := 0; rank < p.Sim().Ranks(); rank++ {
		name := recovery.CheckpointFile(CrashMatrixSteps, rank)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("golden checkpoint: %v", err)
		}
		g.ckpts[name] = data
	}
	return g
}

// assertClean checks the leak invariants the matrix demands of every
// run, crashed or resumed: zero pinned payload regions and a fully
// re-settled credit account.
func assertClean(t *testing.T, label string, p *core.Pipeline) {
	t.Helper()
	if n := p.PinnedRegions(); n != 0 {
		t.Errorf("%s: %d pinned regions leaked", label, n)
	}
	if c := p.Credits(); c != nil {
		if c.Available() != c.Total() || c.Outstanding() != 0 {
			t.Errorf("%s: credits leaked: available %d / total %d, outstanding %d",
				label, c.Available(), c.Total(), c.Outstanding())
		}
	}
}

// assertConverged checks one crash cell's resumed run against the
// golden: every step durably committed with identical result digests,
// every live step's stored result deep-equal to the golden's, and the
// final checkpoint files byte-identical.
func assertConverged(t *testing.T, g *cmGolden, dir string, p2 *core.Pipeline, rep2 *core.Report) {
	t.Helper()
	j, err := recovery.Open(dir)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	st := recovery.Analyze(j.Records())
	if st.LastCommit != CrashMatrixSteps {
		t.Errorf("journal: last commit %d, want %d", st.LastCommit, CrashMatrixSteps)
	}
	for s := 1; s <= CrashMatrixSteps; s++ {
		c, ok := st.Commits[s]
		if !ok {
			t.Errorf("step %d never committed", s)
			continue
		}
		if !reflect.DeepEqual(c.Digests, g.digests[s]) {
			t.Errorf("step %d digests diverge: got %v, golden %v", s, c.Digests, g.digests[s])
		}
	}
	from := rep2.Recovery.ResumedFrom
	for name, m := range g.rep.Results {
		for s, want := range m {
			if s <= from {
				continue
			}
			if got := rep2.Results[name][s]; !reflect.DeepEqual(got, want) {
				t.Errorf("%s@%d: resumed result diverges from golden", name, s)
			}
		}
	}
	for name, want := range g.ckpts {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("final checkpoint %s: %v", name, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("final checkpoint %s differs from golden", name)
		}
	}
	assertClean(t, "resumed", p2)
}

// TestCrashMatrix is the chaos gate: kill the run at every journal
// phase boundary at early, middle, and final steps, resume, and
// require bit-identical convergence to the golden run plus zero
// resource leaks — and, for the corruption cell, a clean fallback to
// the next older checkpoint when the newest one fails its CRCs.
func TestCrashMatrix(t *testing.T) {
	g := goldenCrashRun(t)

	cells := []struct {
		phase recovery.Phase
		step  int
	}{
		{recovery.PhasePreAdmit, 1}, {recovery.PhasePreAdmit, 5}, {recovery.PhasePreAdmit, 10},
		{recovery.PhaseMidSubmit, 2}, {recovery.PhaseMidSubmit, 5}, {recovery.PhaseMidSubmit, 10},
		{recovery.PhaseMidCheckpoint, 2}, {recovery.PhaseMidCheckpoint, 6}, {recovery.PhaseMidCheckpoint, 10},
		{recovery.PhasePostCommit, 1}, {recovery.PhasePostCommit, 5}, {recovery.PhasePostCommit, 10},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(fmt.Sprintf("%s@%d", cell.phase, cell.step), func(t *testing.T) {
			// Cells are independent: each owns its journal directory and
			// only reads the shared golden. Running them in parallel keeps
			// the 13-cell matrix inside a tolerable wall-clock budget.
			t.Parallel()
			dir := t.TempDir()
			p1, _, err := NewCrashMatrixPipeline(dir, recovery.KillAt(cell.phase, cell.step))
			if err != nil {
				t.Fatal(err)
			}
			_, err = p1.Run(CrashMatrixSteps)
			if !errors.Is(err, recovery.ErrKilled) {
				t.Fatalf("crashed run: err = %v, want ErrKilled", err)
			}
			assertClean(t, "crashed", p1)

			p2, _, err := NewCrashMatrixPipeline(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep2, err := p2.Resume(CrashMatrixSteps)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if cell.phase == recovery.PhaseMidSubmit && rep2.Recovery.ReplayedTasks < 1 {
				t.Errorf("mid-submit cell replayed %d tasks, want >= 1", rep2.Recovery.ReplayedTasks)
			}
			assertConverged(t, g, dir, p2, rep2)
		})
	}

	t.Run("corrupt-checkpoint-fallback", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		p1, _, err := NewCrashMatrixPipeline(dir, recovery.KillAt(recovery.PhasePostCommit, 6))
		if err != nil {
			t.Fatal(err)
		}
		_, err = p1.Run(CrashMatrixSteps)
		if !errors.Is(err, recovery.ErrKilled) {
			t.Fatalf("crashed run: err = %v, want ErrKilled", err)
		}
		// Bit-flip a payload byte of the newest checkpoint's rank-0
		// file: resume must reject it on CRC and fall back to step 4.
		victim := filepath.Join(dir, recovery.CheckpointFile(6, 0))
		data, err := os.ReadFile(victim)
		if err != nil {
			t.Fatal(err)
		}
		data[64] ^= 0x01
		if err := os.WriteFile(victim, data, 0o644); err != nil {
			t.Fatal(err)
		}

		p2, _, err := NewCrashMatrixPipeline(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := p2.Resume(CrashMatrixSteps)
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if rep2.Recovery.ResumedFrom != 6 {
			t.Errorf("resumed from %d, want 6", rep2.Recovery.ResumedFrom)
		}
		if rep2.Recovery.CheckpointStep != 4 {
			t.Errorf("restored at checkpoint %d, want fallback to 4", rep2.Recovery.CheckpointStep)
		}
		if len(rep2.Warnings) == 0 {
			t.Error("checkpoint fallback produced no warning")
		}
		assertConverged(t, g, dir, p2, rep2)
	})
}
