package workload

import (
	"fmt"
	"strings"

	"insitu/internal/comm"
	"insitu/internal/grid"
	"insitu/internal/mergetree"
	"insitu/internal/sim"
)

// Fig. 1's point: ignition kernels live ~10 simulation steps, but
// conventional post-processing sees only every ~400th step, so the
// connectivity indicators (feature overlap between consecutive
// outputs) are lost, and most kernels are never observed at all. The
// concurrent-analysis pipeline runs at every step (or every 10th) and
// keeps them. RunFig1 measures both effects as a function of the
// analysis cadence.

// CadenceRow reports tracking quality at one analysis cadence.
type CadenceRow struct {
	Cadence int
	// KernelsCaptured of KernelsTotal ground-truth ignition events had
	// at least one analysis step inside their lifetime.
	KernelsCaptured int
	KernelsTotal    int
	// MeanMatches is the average number of overlap matches between
	// consecutive analysis outputs (the Fig. 1 connectivity
	// indicator); zero means tracking is impossible.
	MeanMatches float64
	// LongestChain is the longest feature chain followed by greatest-
	// overlap tracking across the sampled outputs.
	LongestChain int
}

// Fig1Result is the full cadence sweep.
type Fig1Result struct {
	Steps          int
	KernelLifetime int
	Threshold      float64
	Rows           []CadenceRow
}

// RunFig1 runs the proxy simulation for `steps` steps, segments the
// OH field (the ignition-kernel marker) at every step, and evaluates
// tracking at each cadence.
func RunFig1(simCfg sim.Config, steps int, threshold float64, cadences []int) (*Fig1Result, error) {
	s, err := sim.New(simCfg)
	if err != nil {
		return nil, err
	}
	// Segment every step. The simulation runs decomposed; fields are
	// stitched to the global domain for segmentation (bitwise equal to
	// a serial run by the decomposition-independence property).
	segs := make([]*mergetree.Segmentation, steps)
	fields := make([]*grid.Field, steps)
	for i := range fields {
		fields[i] = grid.NewField("Y_OH", simCfg.Global)
	}
	gate := make(chan struct{}, 1)
	gate <- struct{}{}
	var rankErr error
	comm.Run(s.Ranks(), func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			<-gate
			rankErr = err
			gate <- struct{}{}
			return
		}
		for step := 0; step < steps; step++ {
			rk.Step()
			f := rk.Field("Y_OH")
			<-gate
			fields[step].Paste(f)
			gate <- struct{}{}
			r.Barrier()
		}
	})
	if rankErr != nil {
		return nil, rankErr
	}
	for step := 0; step < steps; step++ {
		segs[step] = mergetree.SegmentField(fields[step], simCfg.Global, threshold)
	}

	// Ground truth: every kernel born in [0, steps).
	var kernels []sim.Kernel
	seen := map[sim.Kernel]bool{}
	for step := 0; step < steps; step++ {
		for _, k := range s.ActiveKernels(step) {
			if !seen[k] {
				seen[k] = true
				kernels = append(kernels, k)
			}
		}
	}

	res := &Fig1Result{Steps: steps, KernelLifetime: simCfg.KernelLifetime, Threshold: threshold}
	for _, c := range cadences {
		if c < 1 {
			return nil, fmt.Errorf("workload: cadence must be >= 1, got %d", c)
		}
		row := CadenceRow{Cadence: c, KernelsTotal: len(kernels)}
		// Which analysis steps run at this cadence? Steps c-1, 2c-1...
		var sampled []int
		for st := c - 1; st < steps; st += c {
			sampled = append(sampled, st)
		}
		// Kernel capture: an event is seen if any sampled step falls
		// inside its lifetime.
		for _, k := range kernels {
			for _, st := range sampled {
				if st >= k.Birth && st < k.Birth+simCfg.KernelLifetime {
					row.KernelsCaptured++
					break
				}
			}
		}
		// Connectivity between consecutive sampled outputs.
		var sub []*mergetree.Segmentation
		for _, st := range sampled {
			sub = append(sub, segs[st])
		}
		total := 0
		for i := 1; i < len(sub); i++ {
			total += len(mergetree.Track(sub[i-1], sub[i]))
		}
		if len(sub) > 1 {
			row.MeanMatches = float64(total) / float64(len(sub)-1)
		}
		// Longest chain from any feature of any output (features need a
		// few steps to grow past the threshold, so chains may start
		// mid-run).
		for s0 := 0; s0 < len(sub); s0++ {
			if len(sub)-s0 <= row.LongestChain {
				break // no remaining window can beat the best chain
			}
			labels := map[int64]bool{}
			for _, l := range sub[s0].Labels {
				labels[l] = true
			}
			for l := range labels {
				if n := len(mergetree.TrackChain(sub[s0:], l)); n > row.LongestChain {
					row.LongestChain = n
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the cadence sweep.
func (r *Fig1Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel lifetime: %d steps, run length: %d steps, OH threshold: %.3g\n\n",
		r.KernelLifetime, r.Steps, r.Threshold)
	fmt.Fprintf(&sb, "%10s %22s %18s %15s\n", "cadence", "kernels captured", "mean matches", "longest chain")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%10d %14d / %5d %18.2f %15d\n",
			row.Cadence, row.KernelsCaptured, row.KernelsTotal, row.MeanMatches, row.LongestChain)
	}
	return sb.String()
}
