// Package workload defines the experiment configurations and runners
// that regenerate the paper's evaluation: Table I (core allocations,
// data sizes, simulation and I/O times), Table II (per-analysis
// in-situ / movement / in-transit costs), Fig. 1 (temporal-cadence
// feature tracking), and Fig. 6 (the per-step timing breakdown).
//
// The paper ran on 4896 and 9440 Jaguar cores over a 1600x1372x430
// grid. Those runs are reproduced at laptop scale with the geometry
// ratios preserved: the 9440-core configuration doubles the x-split of
// the simulation decomposition exactly as the paper does (16x28x10 ->
// 32x28x10), halving each rank's block, while the I/O rows are
// regenerated through the calibrated Lustre model (bp.JaguarLustre).
package workload

import (
	"time"

	"insitu/internal/core"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/sim"
)

// PaperRef holds the published numbers a scenario is compared to.
type PaperRef struct {
	Cores        int
	SimRanks     int
	DSCores      int
	TransitCores int
	Volume       [3]int
	Variables    int
	DataGB       float64
	SimTime      time.Duration
	IORead       time.Duration
	IOWrite      time.Duration
}

// Scenario is one experiment configuration: a laptop-scale pipeline
// whose shape mirrors one of the paper's runs.
type Scenario struct {
	Name      string
	Sim       sim.Config
	DSServers int
	Buckets   int
	Paper     PaperRef
}

// paper4896 and paper9440 are Table I's published rows.
var paper4896 = PaperRef{
	Cores: 4896, SimRanks: 4480, DSCores: 160, TransitCores: 256,
	Volume: [3]int{1600, 1372, 430}, Variables: 14, DataGB: 98.5,
	SimTime: 16850 * time.Millisecond,
	IORead:  6560 * time.Millisecond,
	IOWrite: 3280 * time.Millisecond,
}

var paper9440 = PaperRef{
	Cores: 9440, SimRanks: 8960, DSCores: 256, TransitCores: 224,
	Volume: [3]int{1600, 1372, 430}, Variables: 14, DataGB: 98.5,
	SimTime: 8420 * time.Millisecond,
	IORead:  6560 * time.Millisecond,
	IOWrite: 3280 * time.Millisecond,
}

// baseGrid is the laptop-scale domain: the paper's grid scaled by
// ~1/28 per dimension, keeping the aspect ratio of 1600x1372x430.
func baseGrid() grid.Box { return grid.NewBox(56, 48, 16) }

// simSubSteps makes the proxy's per-point step cost S3D-like (S3D's
// explicit RK substeps are dominated by chemistry), so the Table II
// in-situ-to-simulation ratios keep their shape.
const simSubSteps = 6

// Scenario4896 mirrors the 4896-core run: a 4x4x2 = 32-rank
// simulation decomposition (the paper's 16x28x10 = 4480 scaled to
// laptop size) with DataSpaces and staging cores in roughly the
// paper's proportion.
func Scenario4896() Scenario {
	cfg := sim.DefaultConfig(baseGrid(), 4, 4, 2)
	cfg.SubSteps = simSubSteps
	return Scenario{
		Name:      "4896-core (scaled 1/140)",
		Sim:       cfg,
		DSServers: 2,
		Buckets:   2,
		Paper:     paper4896,
	}
}

// Scenario9440 mirrors the 9440-core run: the x-split of the
// simulation decomposition doubles (paper: 16x28x10 -> 32x28x10),
// halving each rank's block.
func Scenario9440() Scenario {
	cfg := sim.DefaultConfig(baseGrid(), 8, 4, 2)
	cfg.SubSteps = simSubSteps
	return Scenario{
		Name:      "9440-core (scaled 1/140)",
		Sim:       cfg,
		DSServers: 2,
		Buckets:   2,
		Paper:     paper9440,
	}
}

// PipelineConfig assembles a core.Config for a scenario.
func (s Scenario) PipelineConfig() core.Config {
	return core.Config{
		Sim:       s.Sim,
		DSServers: s.DSServers,
		Buckets:   s.Buckets,
		Net:       netsim.Gemini(),
	}
}

// RawStepBytes returns the size of one timestep's full state (all
// variables, 8 bytes per point).
func (s Scenario) RawStepBytes() int64 {
	return int64(s.Sim.Global.Size()) * 8 * int64(len(sim.VarNames))
}

// PaperTableII holds the published Table II rows (4896 cores, per
// simulation time step) for shape comparison.
type TableIIRef struct {
	InSitu     time.Duration
	Movement   time.Duration
	MovementMB float64
	InTransit  time.Duration
}

// PaperTableIIRows maps the analysis names used by this library to the
// paper's measurements.
func PaperTableIIRows() map[string]TableIIRef {
	return map[string]TableIIRef{
		"in-situ visualization": {
			InSitu: 730 * time.Millisecond,
		},
		"in-situ descriptive statistics": {
			InSitu: 1640 * time.Millisecond,
		},
		"hybrid visualization": {
			InSitu: 80 * time.Millisecond, Movement: 92 * time.Millisecond,
			MovementMB: 49.19, InTransit: 5060 * time.Millisecond,
		},
		"hybrid topology": {
			InSitu: 2720 * time.Millisecond, Movement: 2060 * time.Millisecond,
			MovementMB: 87.02, InTransit: 119810 * time.Millisecond,
		},
		"hybrid descriptive statistics": {
			InSitu: 1690 * time.Millisecond, Movement: 60 * time.Millisecond,
			MovementMB: 13.30, InTransit: 10 * time.Millisecond,
		},
	}
}
