package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"insitu/internal/bp"
	"insitu/internal/comm"
	"insitu/internal/grid"
	"insitu/internal/sim"
)

// TableIRow is one column of the paper's Table I, with measured
// laptop-scale values and modeled paper-scale values side by side.
type TableIRow struct {
	Scenario Scenario

	// Measured at laptop scale.
	SimRanks       int
	BlockDims      [3]int
	MeasuredStep   time.Duration // wall time per simulation step
	MeasuredWrite  time.Duration // file-per-process checkpoint write
	MeasuredRead   time.Duration // checkpoint read-back
	CheckpointByte int64

	// Modeled at paper scale through the calibrated Lustre model.
	ModeledPaperRead  time.Duration
	ModeledPaperWrite time.Duration
}

// RunTableI executes one scenario's Table I measurement: advance the
// simulation `steps` steps timing each, then write and read back a
// file-per-process checkpoint in dir.
func RunTableI(sc Scenario, steps int, dir string) (*TableIRow, error) {
	s, err := sim.New(sc.Sim)
	if err != nil {
		return nil, err
	}
	row := &TableIRow{Scenario: sc, SimRanks: s.Ranks()}
	row.BlockDims = s.Decomp().Block(0).Dims()

	type rankOut struct {
		fields []*grid.Field
		err    error
	}
	outs := make([]rankOut, s.Ranks())
	start := time.Now()
	comm.Run(s.Ranks(), func(r *comm.Rank) {
		rk, err := s.NewRank(r)
		if err != nil {
			outs[r.ID()].err = err
			return
		}
		rk.RunSteps(steps)
		var fields []*grid.Field
		for _, name := range sim.VarNames {
			fields = append(fields, rk.Field(name))
		}
		outs[r.ID()].fields = fields
	})
	row.MeasuredStep = time.Since(start) / time.Duration(steps)
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
	}

	// File-per-process checkpoint write.
	wStart := time.Now()
	var total int64
	for rank, o := range outs {
		n, err := bp.WriteFile(filepath.Join(dir, fmt.Sprintf("rank-%04d.bp", rank)), o.fields)
		if err != nil {
			return nil, err
		}
		total += n
	}
	row.MeasuredWrite = time.Since(wStart)
	row.CheckpointByte = total

	// Read-back.
	rStart := time.Now()
	for rank := range outs {
		if _, err := bp.ReadFile(filepath.Join(dir, fmt.Sprintf("rank-%04d.bp", rank))); err != nil {
			return nil, err
		}
	}
	row.MeasuredRead = time.Since(rStart)

	// Paper-scale I/O through the Lustre model.
	m := bp.JaguarLustre()
	paperBytes := int64(sc.Paper.DataGB * 1e9)
	row.ModeledPaperRead = m.ReadTime(paperBytes, sc.Paper.SimRanks)
	row.ModeledPaperWrite = m.WriteTime(paperBytes, sc.Paper.SimRanks)
	return row, nil
}

// FormatTableI renders rows in the layout of the paper's Table I.
func FormatTableI(rows []*TableIRow) string {
	var sb strings.Builder
	col := func(vals ...string) {
		fmt.Fprintf(&sb, "%-38s", vals[0])
		for _, v := range vals[1:] {
			fmt.Fprintf(&sb, " %26s", v)
		}
		sb.WriteByte('\n')
	}
	names := []string{""}
	simCores := []string{"No. of simulation/in-situ cores"}
	dsCores := []string{"No. of DataSpaces-service cores"}
	trCores := []string{"No. of in-transit cores"}
	vol := []string{"Volume size"}
	vars := []string{"No. of variables"}
	data := []string{"Data size (GB)"}
	simT := []string{"Simulation time (sec.)"}
	ioR := []string{"I/O read time (sec.)"}
	ioW := []string{"I/O write time (sec.)"}
	for _, r := range rows {
		p := r.Scenario.Paper
		names = append(names, fmt.Sprintf("%d [scaled: %d ranks]", p.Cores, r.SimRanks))
		simCores = append(simCores, fmt.Sprintf("%d [paper %d]", r.SimRanks, p.SimRanks))
		dsCores = append(dsCores, fmt.Sprintf("%d [paper %d]", r.Scenario.DSServers, p.DSCores))
		trCores = append(trCores, fmt.Sprintf("%d [paper %d]", r.Scenario.Buckets, p.TransitCores))
		d := r.Scenario.Sim.Global.Dims()
		vol = append(vol, fmt.Sprintf("%dx%dx%d [paper %dx%dx%d]",
			d[0], d[1], d[2], p.Volume[0], p.Volume[1], p.Volume[2]))
		vars = append(vars, fmt.Sprintf("%d", p.Variables))
		data = append(data, fmt.Sprintf("%.4f [paper %.1f]",
			float64(r.CheckpointByte)/1e9, p.DataGB))
		simT = append(simT, fmt.Sprintf("%.3f [paper %.2f]",
			r.MeasuredStep.Seconds(), p.SimTime.Seconds()))
		ioR = append(ioR, fmt.Sprintf("%.3f [model %.2f, paper %.2f]",
			r.MeasuredRead.Seconds(), r.ModeledPaperRead.Seconds(), p.IORead.Seconds()))
		ioW = append(ioW, fmt.Sprintf("%.3f [model %.2f, paper %.2f]",
			r.MeasuredWrite.Seconds(), r.ModeledPaperWrite.Seconds(), p.IOWrite.Seconds()))
	}
	col(names...)
	col(simCores...)
	col(dsCores...)
	col(trCores...)
	col(vol...)
	col(vars...)
	col(data...)
	col(simT...)
	col(ioR...)
	col(ioW...)
	return sb.String()
}

// CleanDir removes the checkpoint files RunTableI produced.
func CleanDir(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
