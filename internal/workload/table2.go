package workload

import (
	"fmt"
	"strings"
	"time"

	"insitu/internal/core"
	"insitu/internal/metrics"
)

// TableIIRow is one analysis row of Table II: measured per-step
// breakdown plus the paper's published values.
type TableIIRow struct {
	Analysis string
	Measured metrics.Breakdown
	Paper    TableIIRef
	HasPaper bool
}

// TableIIResult bundles the rows with the run's simulation time, so
// percent-of-simulation figures (Fig. 6's headline claims) can be
// derived.
type TableIIResult struct {
	Rows        []TableIIRow
	SimPerStep  time.Duration
	Steps       int
	PaperSim    time.Duration
	RawStepByte int64
}

// analysisSet builds the five paper analyses plus the two extensions.
func analysisSet(withExtensions bool) []core.Analysis {
	topo := core.NewTopologyHybrid()
	topo.SimplifyEps = 0.05
	as := []core.Analysis{
		&core.StatsInSitu{},
		&core.StatsHybrid{},
		core.NewVizInSitu(64, 48),
		core.NewVizHybrid(64, 48, 8),
		topo,
	}
	if withExtensions {
		as = append(as,
			&core.AutoCorrHybrid{Lags: []int{1, 5, 10}},
			&core.FeatureStatsHybrid{Threshold: 1.0},
			&core.ContingencyHybrid{},
		)
	}
	return as
}

// RunTableII runs the full pipeline with every analysis for the given
// number of steps and collects the Table II breakdown.
func RunTableII(sc Scenario, steps int, withExtensions bool) (*TableIIResult, error) {
	p, err := core.NewPipeline(sc.PipelineConfig())
	if err != nil {
		return nil, err
	}
	for _, a := range analysisSet(withExtensions) {
		p.Register(a)
	}
	rep, err := p.Run(steps)
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{Steps: steps, PaperSim: sc.Paper.SimTime, RawStepByte: sc.RawStepBytes()}
	_, res.SimPerStep, _ = rep.Metrics.SimTime()
	paper := PaperTableIIRows()
	for _, name := range rep.Metrics.Analyses() {
		row := TableIIRow{Analysis: name, Measured: rep.Metrics.Total(name).PerStep()}
		if ref, ok := paper[name]; ok {
			row.Paper = ref
			row.HasPaper = true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the result in the layout of the paper's Table II,
// with the paper's numbers bracketed for comparison.
func (r *TableIIResult) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "simulation time per step: %.4fs [paper %.2fs]\n\n",
		r.SimPerStep.Seconds(), r.PaperSim.Seconds())
	fmt.Fprintf(&sb, "%-42s %24s %24s %20s %26s\n",
		"analysis", "in-situ (s)", "movement (s)", "moved (MB)", "in-transit (s)")
	for _, row := range r.Rows {
		m := row.Measured
		mb := float64(m.MoveBytes) / 1e6
		if row.HasPaper {
			p := row.Paper
			fmt.Fprintf(&sb, "%-42s %12.4f [%8.2f] %12.4f [%8.3f] %8.3f [%8.2f] %12.4f [%10.2f]\n",
				row.Analysis,
				m.InSitu.Seconds(), p.InSitu.Seconds(),
				m.MoveModeled.Seconds(), p.Movement.Seconds(),
				mb, p.MovementMB,
				m.InTransit.Seconds(), p.InTransit.Seconds())
		} else {
			fmt.Fprintf(&sb, "%-42s %12.4f %11s %12.4f %11s %8.3f %11s %12.4f\n",
				row.Analysis,
				m.InSitu.Seconds(), "",
				m.MoveModeled.Seconds(), "",
				mb, "",
				m.InTransit.Seconds())
		}
	}
	return sb.String()
}

// Fig6Bar is one bar of the Fig. 6 timing breakdown: a named quantity
// expressed both in absolute time and as a fraction of the simulation
// step.
type Fig6Bar struct {
	Label     string
	Time      time.Duration
	OfSimStep float64 // fraction of the per-step simulation time
}

// Fig6Series derives the Fig. 6 presentation from a Table II result:
// per-analysis in-situ, movement, and in-transit bars alongside the
// simulation bar.
func (r *TableIIResult) Fig6Series() []Fig6Bar {
	out := []Fig6Bar{{Label: "simulation", Time: r.SimPerStep, OfSimStep: 1}}
	frac := func(d time.Duration) float64 {
		if r.SimPerStep <= 0 {
			return 0
		}
		return d.Seconds() / r.SimPerStep.Seconds()
	}
	for _, row := range r.Rows {
		m := row.Measured
		out = append(out, Fig6Bar{
			Label: row.Analysis + " (in-situ)", Time: m.InSitu, OfSimStep: frac(m.InSitu),
		})
		if m.MoveBytes > 0 {
			out = append(out,
				Fig6Bar{Label: row.Analysis + " (movement)", Time: m.MoveModeled, OfSimStep: frac(m.MoveModeled)},
				Fig6Bar{Label: row.Analysis + " (in-transit)", Time: m.InTransit, OfSimStep: frac(m.InTransit)},
			)
		}
	}
	return out
}

// FormatFig6 renders the series as rows with a text bar chart.
func FormatFig6(bars []Fig6Bar) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-58s %14s %10s  %s\n", "component", "time", "% of sim", "")
	for _, b := range bars {
		n := int(b.OfSimStep * 50)
		if n > 60 {
			n = 60
		}
		fmt.Fprintf(&sb, "%-58s %14s %9.2f%%  %s\n",
			b.Label, b.Time.Round(time.Microsecond), 100*b.OfSimStep, strings.Repeat("#", n))
	}
	return sb.String()
}
