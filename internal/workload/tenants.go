package workload

import (
	"errors"
	"sync/atomic"

	"insitu/internal/core"
	"insitu/internal/registry"
)

// The tenants scenario is the multi-tenant staging-fabric soak: three
// tenant simulations time-multiplex one scheduler (one DataSpaces
// queue, one bucket pool, one interconnect). Two tenants — alpha and
// beta, the victims — run the healthy hybrid routes. The third, gamma,
// is the noisy neighbor twice over: a seeded slowdown window collapses
// the bandwidth of every transfer touching gamma's rank endpoints (so
// gamma's pulls hold shared buckets for ~400x longer), and gamma's
// extra "poison" analysis crashes its in-transit handler until the
// quarantine's strike budget is spent. The fabric must hold the
// bulkheads: victims keep stepping at solo pace, the poison route is
// quarantined and later released by a half-open probe, the autoscaler
// widens the bucket pool under pressure, and nothing leaks.
//
// All constants are exported so the soak test and the s3dpipe -tenants
// scenario run the identical configuration.
const (
	// TenantSteps is the length of the soak in simulation steps.
	TenantSteps = 40
	// TenantSeed fixes the injector PRNG.
	TenantSeed = 7
	// TenantSlowFrom/TenantSlowUntil bound gamma's slowdown window in
	// decision-index space. A full noisy run consumes roughly 500
	// injector decisions (three tenants' pulls share one counter), so
	// this window opens after the fabric has warmed up and closes with
	// a comfortable tail for recovery: ladders climb back to full, the
	// autoscaler observes idleness, and the quarantine probe heals.
	TenantSlowFrom  = 100
	TenantSlowUntil = 300
	// TenantSlowFactor multiplies the modeled duration of every covered
	// transfer — the same ~400x collapse the brownout soak uses, but
	// scoped to gamma's endpoints only.
	TenantSlowFactor = 400
	// TenantTimeScale converts modeled durations into real sleeps so
	// the collapse manifests as wall-clock staging latency.
	TenantTimeScale = 0.1
	// TenantPoisonFails is how many in-transit attempts gamma's poison
	// handler fails before healing. Equal to the quarantine's strike
	// budget, so the route opens on exactly the strike budget and the
	// first half-open probe heals it.
	TenantPoisonFails = 2
)

// TenantVictims are the victim tenants; TenantNoisy is the neighbor.
var (
	TenantVictims = []string{"alpha", "beta"}
	TenantNoisy   = "gamma"
)

// poisonAnalysis is gamma's poison route: the in-transit handler fails
// its first FailAttempts executions and succeeds afterwards, so the
// open -> probe -> release cycle is deterministic regardless of how
// long each result takes to drain.
type poisonAnalysis struct {
	FailAttempts int64
	attempts     atomic.Int64
}

// PoisonRouteName is the analysis name the quarantine soak watches.
const PoisonRouteName = "poison"

func (p *poisonAnalysis) Name() string { return PoisonRouteName }
func (p *poisonAnalysis) Every() int   { return 1 }

func (p *poisonAnalysis) InSituStage(ctx *core.Ctx) ([]byte, error) {
	return []byte{byte(ctx.Step), byte(ctx.Comm.ID())}, nil
}

func (p *poisonAnalysis) InTransit(step int, payloads [][]byte) (any, error) {
	if p.attempts.Add(1) <= p.FailAttempts {
		return nil, errors.New("poison: handler crash")
	}
	return step, nil
}

// NewTenantScheduler builds the multi-tenant soak: victims alpha and
// beta run the two healthy hybrid routes (visualization + statistics)
// and the gamma tenant runs visualization plus the poison route, all
// over a shared 2..4-bucket autoscaled staging tier with per-tenant
// credit floors and DRR dequeue. With noisy=true gamma misbehaves:
// its poison handler crashes through the quarantine strike budget and
// the seeded slowdown window is installed over its rank endpoints.
// With noisy=false it returns the identical healthy twin — same three
// tenants, same routes, no fault schedule, a poison handler that
// never crashes — whose per-step wall times are the soak's baseline:
// the twin isolates the injected noise from the mere CPU cost of
// co-tenancy, which the bulkheads do not (and cannot) remove.
//
// The second return value lists the victims' hybrid route names.
//
// Since the registry refactor this is a thin wrapper over
// registry.Build(TenantsConfig(noisy)): the fabric tuning lives with
// the config in configs.go, the slowdown window is scoped to gamma's
// rank endpoints by the registry's tenant-resolved fault install, and
// the soak exercises the same construction path as
// `s3dpipe -config examples/configs/tenants.json`.
func NewTenantScheduler(noisy bool) (*core.Scheduler, []string, error) {
	b, err := registry.Build(TenantsConfig(noisy))
	if err != nil {
		return nil, nil, err
	}
	return b.Scheduler, b.Tenants[0].Routes, nil
}
