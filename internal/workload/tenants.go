package workload

import (
	"errors"
	"sync/atomic"
	"time"

	"insitu/internal/core"
	"insitu/internal/faults"
	"insitu/internal/grid"
	"insitu/internal/netsim"
	"insitu/internal/overload"
	"insitu/internal/sim"
)

// The tenants scenario is the multi-tenant staging-fabric soak: three
// tenant simulations time-multiplex one scheduler (one DataSpaces
// queue, one bucket pool, one interconnect). Two tenants — alpha and
// beta, the victims — run the healthy hybrid routes. The third, gamma,
// is the noisy neighbor twice over: a seeded slowdown window collapses
// the bandwidth of every transfer touching gamma's rank endpoints (so
// gamma's pulls hold shared buckets for ~400x longer), and gamma's
// extra "poison" analysis crashes its in-transit handler until the
// quarantine's strike budget is spent. The fabric must hold the
// bulkheads: victims keep stepping at solo pace, the poison route is
// quarantined and later released by a half-open probe, the autoscaler
// widens the bucket pool under pressure, and nothing leaks.
//
// All constants are exported so the soak test and the s3dpipe -tenants
// scenario run the identical configuration.
const (
	// TenantSteps is the length of the soak in simulation steps.
	TenantSteps = 40
	// TenantSeed fixes the injector PRNG.
	TenantSeed = 7
	// TenantSlowFrom/TenantSlowUntil bound gamma's slowdown window in
	// decision-index space. A full noisy run consumes roughly 500
	// injector decisions (three tenants' pulls share one counter), so
	// this window opens after the fabric has warmed up and closes with
	// a comfortable tail for recovery: ladders climb back to full, the
	// autoscaler observes idleness, and the quarantine probe heals.
	TenantSlowFrom  = 100
	TenantSlowUntil = 300
	// TenantSlowFactor multiplies the modeled duration of every covered
	// transfer — the same ~400x collapse the brownout soak uses, but
	// scoped to gamma's endpoints only.
	TenantSlowFactor = 400
	// TenantTimeScale converts modeled durations into real sleeps so
	// the collapse manifests as wall-clock staging latency.
	TenantTimeScale = 0.1
	// TenantPoisonFails is how many in-transit attempts gamma's poison
	// handler fails before healing. Equal to the quarantine's strike
	// budget, so the route opens on exactly the strike budget and the
	// first half-open probe heals it.
	TenantPoisonFails = 2
)

// TenantVictims are the victim tenants; TenantNoisy is the neighbor.
var (
	TenantVictims = []string{"alpha", "beta"}
	TenantNoisy   = "gamma"
)

// poisonAnalysis is gamma's poison route: the in-transit handler fails
// its first FailAttempts executions and succeeds afterwards, so the
// open -> probe -> release cycle is deterministic regardless of how
// long each result takes to drain.
type poisonAnalysis struct {
	FailAttempts int64
	attempts     atomic.Int64
}

// PoisonRouteName is the analysis name the quarantine soak watches.
const PoisonRouteName = "poison"

func (p *poisonAnalysis) Name() string { return PoisonRouteName }
func (p *poisonAnalysis) Every() int   { return 1 }

func (p *poisonAnalysis) InSituStage(ctx *core.Ctx) ([]byte, error) {
	return []byte{byte(ctx.Step), byte(ctx.Comm.ID())}, nil
}

func (p *poisonAnalysis) InTransit(step int, payloads [][]byte) (any, error) {
	if p.attempts.Add(1) <= p.FailAttempts {
		return nil, errors.New("poison: handler crash")
	}
	return step, nil
}

// tenantOverload is the per-tenant admission plane for the soak — the
// brownout tuning, reused: latency-sensitive breakers, a fast ladder,
// and a modeled-duration probe verdict that separates healthy from
// browned-out deterministically.
func tenantOverload() *overload.Config {
	return &overload.Config{
		Breaker: overload.BreakerConfig{
			FailureThreshold: 3,
			LatencyThreshold: 5 * time.Millisecond,
			LatencyAlpha:     0.5,
			Cooldown:         2 * time.Millisecond,
		},
		Ladder: overload.LadderConfig{
			QueueHigh: 3, QueueLow: 1,
			DegradeAfter: 1, RecoverAfter: 2,
		},
		QueueBound:      4,
		ProbeLatencyMax: 50 * time.Microsecond,
	}
}

// NewTenantScheduler builds the multi-tenant soak: victims alpha and
// beta run the two healthy hybrid routes (visualization + statistics)
// and the gamma tenant runs visualization plus the poison route, all
// over a shared 2..4-bucket autoscaled staging tier with per-tenant
// credit floors and DRR dequeue. With noisy=true gamma misbehaves:
// its poison handler crashes through the quarantine strike budget and
// the seeded slowdown window is installed over its rank endpoints.
// With noisy=false it returns the identical healthy twin — same three
// tenants, same routes, no fault schedule, a poison handler that
// never crashes — whose per-step wall times are the soak's baseline:
// the twin isolates the injected noise from the mere CPU cost of
// co-tenancy, which the bulkheads do not (and cannot) remove.
//
// The second return value lists the victims' hybrid route names.
func NewTenantScheduler(noisy bool) (*core.Scheduler, []string, error) {
	net := netsim.Gemini()
	net.TimeScale = TenantTimeScale

	s, err := core.NewScheduler(core.SchedulerConfig{
		DSServers:     2,
		Buckets:       2,
		MaxBuckets:    4,
		Net:           net,
		QueueBound:    4,
		TenantReserve: 2,
		Autoscale: &overload.AutoscaleConfig{
			Min: 2, Max: 4,
			QueueHighPerBucket: 2,
			GrowAfter:          2,
			ShrinkAfter:        3,
		},
		Quarantine: overload.QuarantineConfig{Strikes: TenantPoisonFails, ProbeAfter: 2},
	})
	if err != nil {
		return nil, nil, err
	}

	simCfg := sim.DefaultConfig(grid.NewBox(24, 16, 8), 2, 1, 1)
	simCfg.SubSteps = 4

	var routes []string
	for _, name := range TenantVictims {
		p, err := s.AddTenant(name, core.TenantConfig{
			Sim:        simCfg,
			Overload:   tenantOverload(),
			StepBudget: 500 * time.Millisecond,
		})
		if err != nil {
			return nil, nil, err
		}
		viz := core.NewVizHybrid(20, 16, 2)
		stats := &core.StatsHybrid{Vars: []string{"T", "P"}}
		p.Register(viz)
		p.Register(stats)
		if routes == nil {
			routes = []string{viz.Name(), stats.Name()}
		}
	}

	p, err := s.AddTenant(TenantNoisy, core.TenantConfig{
		Sim:        simCfg,
		Overload:   tenantOverload(),
		StepBudget: 500 * time.Millisecond,
	})
	if err != nil {
		return nil, nil, err
	}
	p.Register(core.NewVizHybrid(20, 16, 2))
	fails := int64(0)
	if noisy {
		fails = TenantPoisonFails
	}
	p.Register(&poisonAnalysis{FailAttempts: fails})
	if !noisy {
		return s, routes, nil
	}

	// The slowdown is scoped to gamma's rank endpoints: every staging
	// pull of a gamma payload crawls, while victim transfers stay
	// healthy — the noise is all gamma's, and so is the attribution.
	var noisyEps []int
	for _, ep := range s.TenantEndpoints(TenantNoisy) {
		noisyEps = append(noisyEps, ep.ID())
	}
	s.Network().SetFaults(faults.New(faults.Config{
		Seed: TenantSeed,
		Slowdowns: []faults.SlowdownWindow{
			{From: TenantSlowFrom, Until: TenantSlowUntil, Endpoints: noisyEps, Factor: TenantSlowFactor},
		},
	}))
	return s, routes, nil
}
