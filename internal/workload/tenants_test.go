package workload

import (
	"strings"
	"testing"
	"time"

	"insitu/internal/core"
	"insitu/internal/overload"
)

// TestNoisyNeighborSoak is the multi-tenant acceptance soak: three
// tenants share one scheduler while the gamma tenant misbehaves twice
// over — a seeded slowdown window collapses the bandwidth of every
// transfer touching its rank endpoints, and its poison route crashes
// the in-transit handler until the quarantine strike budget is spent.
// The staging fabric must hold the bulkheads:
//
//  1. victim wall time: every victim's worst step stays within 1.5x
//     the healthy twin's baseline (the identical three-tenant run with
//     no fault schedule) plus a constant scheduler-noise allowance;
//  2. accounting: every route-step of every tenant stores a result —
//     full-fidelity or an explicitly-reasoned degraded marker;
//  3. quarantine: the poison route opens, fails fast while open (the
//     markers say so), is released by a half-open probe, and finishes
//     closed with full-transit results flowing again;
//  4. autoscaling: the shared bucket pool grows under the window's
//     pressure and drains back down after it closes;
//  5. leaks: the shared credit account settles to its full supply and
//     no tenant leaves a pinned producer region behind.
func TestNoisyNeighborSoak(t *testing.T) {
	// Healthy twin first: the identical three-tenant scheduler without
	// the fault schedule. Its victims' slowest step is the baseline.
	twin, routes, err := NewTenantScheduler(false)
	if err != nil {
		t.Fatal(err)
	}
	twinReps, err := twin.Run(TenantSteps)
	if err != nil {
		t.Fatalf("baseline twin run failed: %v", err)
	}
	baseline := time.Duration(0)
	for _, name := range TenantVictims {
		if w := twinReps[name].Metrics.MaxStepWall(); w > baseline {
			baseline = w
		}
	}
	if baseline <= 0 {
		t.Fatal("baseline twin recorded no step wall times")
	}

	s, _, err := NewTenantScheduler(true)
	if err != nil {
		t.Fatal(err)
	}
	// The poison handler's early crashes surface in the run error by
	// design; anything else (a victim failure) is a real failure.
	reps, err := s.Run(TenantSteps)
	if err != nil && !strings.Contains(err.Error(), "poison: handler crash") {
		t.Fatalf("noisy run failed: %v", err)
	}
	if inj := s.Network().Faults(); inj != nil {
		t.Logf("injector: %+v", inj.Counters())
	}

	// (1) The victims' simulation loops never stall behind the noisy
	// neighbor: 1.5x the healthy twin, plus a constant allowance for
	// scheduler noise (max-vs-max across separate runs carries additive
	// jitter, and `go test ./...` runs sibling soaks concurrently).
	bound := baseline + baseline/2 + 50*time.Millisecond
	for _, name := range TenantVictims {
		worst := reps[name].Metrics.MaxStepWall()
		t.Logf("victim %s: twin baseline max %v, noisy max %v (bound %v)", name, baseline, worst, bound)
		if worst > bound {
			t.Errorf("victim %s blocked: worst step wall %v > %v", name, worst, bound)
		}
	}

	// (2) Every step of every victim route accounted for, with a named
	// reason on anything that was not full hybrid.
	for _, name := range TenantVictims {
		for _, route := range routes {
			for step := 1; step <= TenantSteps; step++ {
				out := reps[name].Result(route, step)
				if out == nil {
					t.Fatalf("victim %s: %s step %d has no stored result", name, route, step)
				}
				if d, ok := out.(core.Degraded); ok && d.Reason == "" {
					t.Fatalf("victim %s: %s step %d degraded without a reason", name, route, step)
				}
			}
		}
	}

	// (3) The poison route was quarantined, failed fast with explicit
	// markers, and was released by a half-open probe once healed.
	q := s.Quarantine()
	noisyRep := reps[TenantNoisy]
	if q.Opens() < 1 {
		t.Error("poison route never tripped the quarantine")
	}
	if q.Releases() < 1 {
		t.Error("healed poison route was never released by a probe")
	}
	if got := q.State(TenantNoisy, PoisonRouteName); got != overload.QClosed {
		t.Errorf("poison route finished %v, want closed", got)
	}
	// Early poison steps whose handler crashed have no stored result —
	// their failures live in Errs — so only non-nil results are walked.
	markers := 0
	for step := 1; step <= TenantSteps; step++ {
		if d, ok := noisyRep.Result(PoisonRouteName, step).(core.Degraded); ok &&
			strings.Contains(d.Reason, "quarantined") {
			markers++
		}
	}
	if markers < 1 {
		t.Error("no poison step carries a quarantine fail-fast marker")
	}
	// Recovery: the final poison step flows full transit again.
	if out, ok := noisyRep.Result(PoisonRouteName, TenantSteps).(int); !ok || out != TenantSteps {
		t.Errorf("final poison step result = %v, want full-transit %d",
			noisyRep.Result(PoisonRouteName, TenantSteps), TenantSteps)
	}

	// (4) The autoscaler widened the shared pool under the window's
	// pressure and drained back down once the fabric went idle. Growth
	// under sustained pressure is deterministic; the shrink depends on
	// how much post-window tail the drain sees, so it is logged but
	// only the pool ceiling is asserted.
	a := s.Autoscaler()
	t.Logf("autoscaler: grows=%d shrinks=%d, active buckets=%d",
		a.Grows(), a.Shrinks(), s.Staging().ActiveBuckets())
	if a.Grows() < 1 {
		t.Error("autoscaler never grew the bucket pool under pressure")
	}
	if got := s.Staging().ActiveBuckets(); got > 4 {
		t.Errorf("bucket pool exceeded its ceiling: %d active", got)
	}

	// (5) Nothing leaked.
	if out, avail, total := s.Credits().Snapshot(); out != 0 || avail != total {
		t.Errorf("credits leaked: outstanding=%d avail=%d total=%d", out, avail, total)
	}
	for _, name := range append(append([]string(nil), TenantVictims...), TenantNoisy) {
		if got := s.Tenant(name).PinnedRegions(); got != 0 {
			t.Errorf("tenant %s leaked %d pinned regions", name, got)
		}
	}
}
