package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ViewerConfig shapes a deterministic synthetic viewer fleet against
// the image-serving tier: N concurrent pollers, each mixing the hot
// path (polling latest.json with a remembered ETag, the live-dashboard
// pattern) with cold random walks over the database's spec cells.
type ViewerConfig struct {
	Viewers  int           // concurrent pollers
	Requests int           // requests per viewer
	Seed     int64         // per-viewer streams derive from Seed+index
	HotFrac  float64       // probability a request polls latest.json (default 0.5)
	Timeout  time.Duration // per-request timeout (default 10s)
}

// ViewerStats aggregates the fleet's outcome: request counters and the
// latency distribution the serving tier is benchmarked on.
type ViewerStats struct {
	Requests    int64
	OK          int64 // 200s
	NotModified int64 // 304s
	Errors      int64 // transport errors and non-2xx/304 statuses
	Bytes       int64 // body bytes received

	P50, P90, P99, Max time.Duration
}

func (s ViewerStats) String() string {
	return fmt.Sprintf("%d requests (%d ok, %d not-modified, %d errors), %d bytes, p50 %s p90 %s p99 %s max %s",
		s.Requests, s.OK, s.NotModified, s.Errors, s.Bytes,
		s.P50.Round(time.Microsecond), s.P90.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// storeInfo is the slice of the serving tier's /db/info.json the
// viewers need: the full spec-cell list to walk.
type storeInfo struct {
	Specs []string `json:"Specs"`
}

// RunViewers drives the viewer fleet against the serving tier at base
// (e.g. "http://127.0.0.1:8080") and returns the aggregate stats. The
// request sequence of each viewer is deterministic given cfg.Seed; the
// interleaving across viewers is not, which is exactly a load test's
// job. An empty database is not an error: viewers then poll
// latest.json only.
func RunViewers(base string, cfg ViewerConfig) (ViewerStats, error) {
	if cfg.Viewers < 1 {
		cfg.Viewers = 1
	}
	if cfg.Requests < 1 {
		cfg.Requests = 1
	}
	if cfg.HotFrac <= 0 || cfg.HotFrac > 1 {
		cfg.HotFrac = 0.5
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}

	// One transport sized for the fleet: per-viewer clients would
	// benchmark connection setup, not the serving tier.
	tr := &http.Transport{
		MaxIdleConns:        cfg.Viewers,
		MaxIdleConnsPerHost: cfg.Viewers,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr, Timeout: cfg.Timeout}

	specs, err := fetchSpecs(client, base)
	if err != nil {
		return ViewerStats{}, err
	}

	var (
		mu        sync.Mutex
		stats     ViewerStats
		latencies = make([]time.Duration, 0, cfg.Viewers*cfg.Requests)
	)
	var wg sync.WaitGroup
	for v := 0; v < cfg.Viewers; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(v)))
			etags := make(map[string]string) // url -> last seen ETag
			local := make([]time.Duration, 0, cfg.Requests)
			var ok, notMod, errs, bytes int64
			for i := 0; i < cfg.Requests; i++ {
				url := base + "/latest.json"
				if len(specs) > 0 && rng.Float64() >= cfg.HotFrac {
					url = base + "/db/" + specs[rng.Intn(len(specs))]
				}
				t0 := time.Now()
				status, etag, n := fetchOnce(client, url, etags[url])
				local = append(local, time.Since(t0))
				bytes += n
				switch {
				case status == http.StatusOK:
					ok++
					if etag != "" {
						etags[url] = etag
					}
				case status == http.StatusNotModified:
					notMod++
				default:
					errs++
				}
			}
			mu.Lock()
			stats.Requests += int64(cfg.Requests)
			stats.OK += ok
			stats.NotModified += notMod
			stats.Errors += errs
			stats.Bytes += bytes
			latencies = append(latencies, local...)
			mu.Unlock()
		}(v)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	stats.P50 = percentile(latencies, 0.50)
	stats.P90 = percentile(latencies, 0.90)
	stats.P99 = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		stats.Max = latencies[n-1]
	}
	return stats, nil
}

// fetchSpecs pulls the database's spec-cell list from /db/info.json.
func fetchSpecs(client *http.Client, base string) ([]string, error) {
	resp, err := client.Get(base + "/db/info.json")
	if err != nil {
		return nil, fmt.Errorf("workload: fetch db info: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: db info: status %d", resp.StatusCode)
	}
	var info storeInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("workload: decode db info: %w", err)
	}
	return info.Specs, nil
}

// fetchOnce performs one conditional GET, draining the body so the
// connection is reusable. A transport failure reports as status 0.
func fetchOnce(client *http.Client, url, etag string) (status int, newETag string, n int64) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", 0
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", 0
	}
	n, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("ETag"), n
}

// percentile reads the q-quantile from sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
