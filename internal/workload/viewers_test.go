package workload

import (
	"net/http/httptest"
	"testing"
	"time"

	"insitu/internal/imagestore"
	"insitu/internal/render"
	"insitu/internal/serve"
)

func viewerFrame(seed int) *render.Image {
	im := render.NewImage(12, 8)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := float64((x+y*5+seed)%9) / 9
			im.Set(x, y, v, v, 1-v, v)
		}
	}
	return im
}

func viewerServer(t *testing.T) (*imagestore.Store, *serve.Server, *httptest.Server) {
	t.Helper()
	st, err := imagestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	for step := 0; step < 4; step++ {
		for _, cam := range []string{"cam00", "cam01"} {
			if _, err := st.PutFrame("T.insitu", step, cam, viewerFrame(step)); err != nil {
				t.Fatal(err)
			}
		}
	}
	sv := serve.New(st)
	ts := httptest.NewServer(sv)
	t.Cleanup(ts.Close)
	return st, sv, ts
}

func TestRunViewers(t *testing.T) {
	_, sv, ts := viewerServer(t)
	stats, err := RunViewers(ts.URL, ViewerConfig{
		Viewers: 16, Requests: 25, Seed: 42, HotFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 16*25 {
		t.Fatalf("requests %d, want %d", stats.Requests, 16*25)
	}
	if stats.Errors != 0 {
		t.Fatalf("%d viewer errors", stats.Errors)
	}
	// Repeat polls of an unchanged latest.json must ride the ETag path.
	if stats.NotModified == 0 {
		t.Fatal("no conditional-GET hits: viewers are not sending If-None-Match")
	}
	if stats.OK == 0 || stats.Bytes == 0 {
		t.Fatalf("no successful fetches: %+v", stats)
	}
	if stats.P50 <= 0 || stats.P99 < stats.P50 || stats.Max < stats.P99 {
		t.Fatalf("percentiles out of order: %+v", stats)
	}
	if sv.Stats().Requests < stats.Requests {
		t.Fatalf("server saw %d requests, fleet sent %d", sv.Stats().Requests, stats.Requests)
	}
}

// TestRunViewersDeterministicSequence: the same seed walks the same
// spec cells — run twice against the same immutable database, the
// fleet's 200/304 split is identical.
func TestRunViewersDeterministicSequence(t *testing.T) {
	_, _, ts := viewerServer(t)
	cfg := ViewerConfig{Viewers: 4, Requests: 30, Seed: 7, HotFrac: 0.3}
	a, err := RunViewers(ts.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunViewers(ts.URL, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.OK != b.OK || a.NotModified != b.NotModified || a.Bytes != b.Bytes {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunViewersEmptyStore(t *testing.T) {
	st, err := imagestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(serve.New(st))
	defer ts.Close()
	stats, err := RunViewers(ts.URL, ViewerConfig{Viewers: 2, Requests: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// latest.json 404s on an empty store: counted as errors, not a
	// crash — a fleet can start before the run's first frame lands.
	if stats.Requests != 6 || stats.Errors != 6 {
		t.Fatalf("empty-store stats: %+v", stats)
	}
}

func TestRunViewersServerGone(t *testing.T) {
	ts := httptest.NewServer(nil)
	url := ts.URL
	ts.Close()
	if _, err := RunViewers(url, ViewerConfig{Viewers: 1, Requests: 1, Timeout: time.Second}); err == nil {
		t.Fatal("expected an error when the tier is unreachable")
	}
}
