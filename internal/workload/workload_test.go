package workload

import (
	"strings"
	"testing"

	"insitu/internal/grid"
	"insitu/internal/sim"
)

func TestScenarioShapes(t *testing.T) {
	a, b := Scenario4896(), Scenario9440()
	// The 9440-core run doubles the x split, exactly like the paper
	// (16x28x10 -> 32x28x10).
	if b.Sim.Px != 2*a.Sim.Px || b.Sim.Py != a.Sim.Py || b.Sim.Pz != a.Sim.Pz {
		t.Fatalf("9440 scenario must double the x split: %dx%dx%d vs %dx%dx%d",
			a.Sim.Px, a.Sim.Py, a.Sim.Pz, b.Sim.Px, b.Sim.Py, b.Sim.Pz)
	}
	if a.Sim.Global != b.Sim.Global {
		t.Fatal("both scenarios must share the global grid")
	}
	if a.Paper.SimTime <= b.Paper.SimTime {
		t.Fatal("paper reference: doubling cores must halve sim time")
	}
	if a.RawStepBytes() != int64(a.Sim.Global.Size()*8*len(sim.VarNames)) {
		t.Fatal("raw step bytes wrong")
	}
}

func TestRunTableI(t *testing.T) {
	sc := Scenario4896()
	// Shrink for test speed.
	sc.Sim = sim.DefaultConfig(grid.NewBox(24, 16, 8), 2, 2, 1)
	dir := t.TempDir()
	row, err := RunTableI(sc, 2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if row.MeasuredStep <= 0 || row.MeasuredWrite <= 0 || row.MeasuredRead <= 0 {
		t.Fatalf("timings not measured: %+v", row)
	}
	wantBytes := int64(sc.Sim.Global.Size() * 8 * len(sim.VarNames)) // payload lower bound
	if row.CheckpointByte < wantBytes {
		t.Fatalf("checkpoint too small: %d < %d", row.CheckpointByte, wantBytes)
	}
	// Modeled paper I/O must land on Table I's values.
	if s := row.ModeledPaperRead.Seconds(); s < 6.3 || s > 6.9 {
		t.Fatalf("modeled paper read %.2fs not ~6.56s", s)
	}
	if s := row.ModeledPaperWrite.Seconds(); s < 3.1 || s > 3.5 {
		t.Fatalf("modeled paper write %.2fs not ~3.28s", s)
	}
	out := FormatTableI([]*TableIRow{row})
	for _, want := range []string{"Simulation time", "I/O read time", "DataSpaces"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I output missing %q:\n%s", want, out)
		}
	}
	CleanDir(dir)
}

func TestRunTableIIAndFig6(t *testing.T) {
	sc := Scenario4896()
	// Shrink for test speed.
	sc.Sim = sim.DefaultConfig(grid.NewBox(20, 12, 8), 2, 2, 1)
	res, err := RunTableII(sc, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimPerStep <= 0 {
		t.Fatal("sim time missing")
	}
	if len(res.Rows) != 8 {
		t.Fatalf("want 8 analysis rows (5 paper + 3 extensions), got %d", len(res.Rows))
	}
	// All five paper analyses must be matched to their reference rows.
	matched := 0
	for _, row := range res.Rows {
		if row.HasPaper {
			matched++
		}
		if row.Measured.InSitu <= 0 {
			t.Fatalf("%s: no in-situ time", row.Analysis)
		}
	}
	if matched != 5 {
		t.Fatalf("want 5 paper-matched rows, got %d", matched)
	}
	// Shape check: hybrid stats moves tiny data and derives almost
	// instantly; topology's in-transit dominates its in-situ stage.
	var topo, hstats TableIIRow
	for _, row := range res.Rows {
		switch row.Analysis {
		case "hybrid topology":
			topo = row
		case "hybrid descriptive statistics":
			hstats = row
		}
	}
	if hstats.Measured.MoveBytes >= topo.Measured.MoveBytes {
		t.Fatal("stats models must be smaller than topology subtrees")
	}
	out := res.Format()
	if !strings.Contains(out, "hybrid topology") {
		t.Fatalf("Table II output malformed:\n%s", out)
	}
	bars := res.Fig6Series()
	if len(bars) == 0 || bars[0].Label != "simulation" || bars[0].OfSimStep != 1 {
		t.Fatalf("Fig 6 series malformed: %+v", bars)
	}
	if !strings.Contains(FormatFig6(bars), "% of sim") {
		t.Fatal("Fig 6 output malformed")
	}
}

func TestRunFig1CadenceSweep(t *testing.T) {
	cfg := sim.DefaultConfig(grid.NewBox(32, 16, 8), 2, 2, 1)
	cfg.KernelRate = 1.2 // plenty of events in a short run
	res, err := RunFig1(cfg, 30, 0.1, []int{1, 5, 10, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("want 4 cadence rows, got %d", len(res.Rows))
	}
	r1, r30 := res.Rows[0], res.Rows[3]
	if r1.KernelsTotal == 0 {
		t.Fatal("no ignition kernels generated")
	}
	// Cadence 1 captures every kernel; cadence >> lifetime misses
	// most.
	if r1.KernelsCaptured != r1.KernelsTotal {
		t.Fatalf("cadence 1 must capture all kernels: %d/%d", r1.KernelsCaptured, r1.KernelsTotal)
	}
	if r30.KernelsCaptured >= r1.KernelsCaptured {
		t.Fatalf("coarse cadence should capture fewer kernels: %d vs %d",
			r30.KernelsCaptured, r1.KernelsCaptured)
	}
	// Connectivity: fine cadence tracks features across many steps.
	if r1.MeanMatches <= 0 {
		t.Fatal("cadence 1 must produce overlap matches")
	}
	if r1.LongestChain < 5 {
		t.Fatalf("cadence 1 should track features across steps, chain=%d", r1.LongestChain)
	}
	if !strings.Contains(res.Format(), "kernels captured") {
		t.Fatal("Fig 1 output malformed")
	}
	// Validation.
	if _, err := RunFig1(cfg, 4, 0.1, []int{0}); err == nil {
		t.Fatal("zero cadence must error")
	}
}
